// Pipeline solves a series-parallel workload exactly with the Section 3.4
// dynamic program and shows the full space-time tradeoff curve, comparing
// against the LP-based bi-criteria algorithm on the same instance.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	rtt "repro"
)

func main() {
	// A three-stage pipeline; each stage fans out into parallel workers
	// with k-way-splitting jobs of different base costs.
	stage := func(costs ...int64) *rtt.SPTree {
		t := rtt.SPLeaf(rtt.NewKWay(costs[0]))
		for _, c := range costs[1:] {
			t = rtt.SPParallel(t, rtt.SPLeaf(rtt.NewKWay(c)))
		}
		return t
	}
	tree := rtt.SPSeries(stage(100, 80), rtt.SPSeries(stage(60, 60, 60), stage(120)))

	const budget = 24
	tables, err := rtt.SPSolve(tree, budget)
	if err != nil {
		log.Fatal(err)
	}
	inst, leafArc, err := tree.ToInstance()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("series-parallel pipeline: exact space-time tradeoff (Section 3.4 DP)")
	fmt.Printf("%-8s %-12s %-22s\n", "budget", "makespan", "bi-criteria makespan")
	for _, l := range []int64{0, 2, 4, 8, 12, 16, 24} {
		m, err := tables.Makespan(l)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rtt.BiCriteria(inst, l, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12d %d (using %d units)\n", l, m, res.Sol.Makespan, res.Sol.Value)
	}

	// Extract and print the optimal allocation at the full budget.
	alloc, err := tables.Allocation(budget)
	if err != nil {
		log.Fatal(err)
	}
	flow, err := tables.Flow(inst, leafArc, budget)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := inst.NewSolution(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat budget %d: %d leaves allocated, witness flow value %d, makespan %d\n",
		budget, len(alloc), sol.Value, sol.Makespan)

	// Round-trip: the materialized DAG is recognized as series-parallel.
	if _, ok := rtt.SPRecognize(inst); !ok {
		log.Fatal("instance should be series-parallel")
	}
	fmt.Println("instance recognized as two-terminal series-parallel")

	// The minimum-resource direction from the same tables.
	if r, ok := tables.MinResource(150); ok {
		fmt.Printf("reaching makespan 150 needs %d units\n", r)
	}
}

// Racedemo walks through the paper's Section 1 narrative: the Figure 1
// data race, the Figure 2 reducer, and the Figure 4/5 race DAG whose
// makespan drops from 11 to 10 with one height-1 supernode - then closes
// the loop to Question 1.3 by solving the derived space-time tradeoff
// instance through the unified solver registry.
//
//	go run ./examples/racedemo
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	rtt "repro"
)

func main() {
	// Figure 1: two parallel increments of x through local registers.
	fmt.Println("Figure 1: two unsynchronized increments of x")
	for _, locked := range []bool{false, true} {
		outcomes := rtt.RaceOutcomes(locked)
		var vals []int
		for v := range outcomes {
			vals = append(vals, v)
		}
		sort.Ints(vals)
		fmt.Printf("  locked=%-5v possible final values: %v\n", locked, vals)
	}

	// Figure 2: eight updates through a height-2 reducer.
	fmt.Println("\nFigure 2: n updates to one cell, with and without a reducer")
	for _, n := range []int{8, 1024} {
		base, err := rtt.Simulate(rtt.SingleCell(n), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%-5d serial: %d\n", n, base.FinishTime)
		for _, h := range []int{2, 5} {
			tr, err := rtt.WithBinaryReducer(rtt.SingleCell(n), 0, h, rtt.SelfParent)
			if err != nil {
				log.Fatal(err)
			}
			res, err := rtt.Simulate(tr, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  n=%-5d height %d (space %d): %d  (formula ceil(n/2^h)+h+1 = %d)\n",
				n, h, 1<<uint(h), res.FinishTime,
				(int64(n)+(1<<uint(h))-1)/(1<<uint(h))+int64(h)+1)
		}
	}

	// Figures 4 and 5: the running race-DAG example.
	fig4 := rtt.Figure4()
	m4, err := fig4.Makespan(nil)
	if err != nil {
		log.Fatal(err)
	}
	fig5, err := rtt.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	m5, err := fig5.Makespan(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 4 race DAG makespan: %d\n", m4)
	fmt.Printf("Figure 5 (height-1 supernode on c, 2 extra cells): %d\n", m5)

	// Observation 1.1 on the same DAG: true execution time is bounded by
	// the makespan.
	ef, err := fig4.EarliestFinish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unbounded-processor execution time of Figure 4: %d <= %d (Observation 1.1)\n", ef, m4)

	// Question 1.3 on a bigger workload: derive the space-time tradeoff
	// instance of a single hot cell with a binary reducer and let the
	// auto solver pick the algorithm whose guarantee applies.
	tr := &rtt.Trace{NumCells: 65}
	for k := 0; k < 64; k++ {
		tr.Updates = append(tr.Updates, rtt.Update{Dst: 64, Srcs: []int{k}})
	}
	vi, err := tr.RaceInstance(rtt.BinaryReducer)
	if err != nil {
		log.Fatal(err)
	}
	af, err := vi.ToArcForm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQuestion 1.3: minimize makespan of the hot-cell race DAG under a space budget")
	ctx := context.Background()
	for _, budget := range []int64{0, 4, 16} {
		rep, err := rtt.Solve(ctx, "auto", af.Inst, rtt.WithBudget(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %-3d makespan %-5d [%s]\n", budget, rep.Sol.Makespan, rep.Routing)
	}
}

// Quickstart: build a small resource-time tradeoff instance and solve it
// through the unified solver registry - exactly, approximately, and with
// the auto portfolio solver.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	rtt "repro"
)

func main() {
	// A fork-join DAG: two parallel branches of two jobs each.  Every job
	// runs in 10 time units for free, or 1 unit if given 2 resources -
	// and a unit of resource flowing down a branch serves both of its
	// jobs (reuse over a path).
	g := rtt.NewGraph()
	s := g.AddNode("s")
	a := g.AddNode("a")
	b := g.AddNode("b")
	t := g.AddNode("t")

	job := func() rtt.DurationFunc {
		fn, err := rtt.NewStep([]rtt.Tuple{{R: 0, T: 10}, {R: 2, T: 1}})
		if err != nil {
			log.Fatal(err)
		}
		return fn
	}
	var fns []rtt.DurationFunc
	for _, arc := range [][2]int{{s, a}, {a, t}, {s, b}, {b, t}} {
		g.AddEdge(arc[0], arc[1])
		fns = append(fns, job())
	}

	inst, err := rtt.NewInstance(g, fns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zero-resource makespan: %d\n", inst.ZeroFlowMakespan())

	ctx := context.Background()
	for _, budget := range []int64{0, 2, 4} {
		rep, err := rtt.Solve(ctx, "exact", inst, rtt.WithBudget(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %d: exact makespan %-3d (search nodes %d, %v)\n",
			budget, rep.Sol.Makespan, rep.Nodes, rep.Wall)
	}

	// The Theorem 3.4 bi-criteria algorithm with alpha = 1/2: it may use
	// up to twice the budget but lands within twice the LP lower bound.
	rep, err := rtt.Solve(ctx, "bicriteria", inst, rtt.WithBudget(2), rtt.WithAlpha(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bi-criteria(alpha=1/2, budget 2): makespan %d using %d units (LP bound %.1f)\n",
		rep.Sol.Makespan, rep.Sol.Value, rep.LowerBound)

	// The auto portfolio solver inspects the instance and picks the
	// solver whose guarantee applies, recording the decision.
	rep, err = rtt.Solve(ctx, "auto", inst, rtt.WithBudget(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto(budget 2): makespan %d via %q\n", rep.Sol.Makespan, rep.Routing)

	// The minimum-resource direction: how much space to reach makespan 2?
	rep, err = rtt.Solve(ctx, "exact", inst, rtt.WithTarget(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reaching makespan 2 needs %d units\n", rep.Sol.Value)
}

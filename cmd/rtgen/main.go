// Command rtgen generates resource-time tradeoff instances as JSON.
//
//	rtgen -kind step -layers 3 -width 3 -seed 7 > instance.json
//	rtgen -kind gadget-1in3 > gadget.json
//
// Kinds: step, kway, binary, sp, forkjoin, gadget-1in3, gadget-partition.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/reduction"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtgen: ")
	kind := flag.String("kind", "step", "step | kway | binary | sp | forkjoin | gadget-1in3 | gadget-partition")
	seed := flag.Int64("seed", 1, "generator seed")
	layers := flag.Int("layers", 3, "layers (layered kinds)")
	width := flag.Int("width", 3, "width per layer")
	extra := flag.Int("extra", 2, "extra cross arcs per layer")
	maxT0 := flag.Int64("maxt0", 30, "max zero-resource duration")
	leaves := flag.Int("leaves", 8, "leaves (sp kind)")
	flag.Parse()

	g := scenario.NewGen(*seed)
	var inst *core.Instance
	switch *kind {
	case "step":
		inst = g.StepInstance(*layers, *width, *extra, 4, *maxT0, 4)
	case "kway":
		inst = g.KWayInstance(*layers, *width, *extra, *maxT0)
	case "binary":
		inst = g.BinaryInstance(*layers, *width, *extra, *maxT0)
	case "sp":
		tree := g.SPTree(*leaves, 4, *maxT0, 4)
		var err error
		inst, _, err = tree.ToInstance()
		if err != nil {
			log.Fatal(err)
		}
	case "forkjoin":
		inst = g.ForkJoin(*layers, *width, "kway", *maxT0)
	case "gadget-1in3":
		r, err := reduction.BuildThm41(reduction.Figure9Formula())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "budget %d reaches makespan %d iff 1-in-3 satisfiable\n", r.Budget, r.Target)
		inst = r.Inst
	case "gadget-partition":
		p, err := reduction.BuildPartition([]int64{3, 1, 4, 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "budget %d, perfect partition iff makespan %d\n", p.Budget, p.Target)
		inst = p.Inst
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	out, err := json.MarshalIndent(inst, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// Command rtcorpus runs the scenario corpus through the solving service
// and verifies solution quality: it is the engine of CI's corpus gate and
// of the nightly scaled quality run.
//
//	rtcorpus -init -dir testdata/scenarios          # materialize the default corpus + goldens
//	rtcorpus -dir testdata/scenarios -out report.json   # verify, emit the quality report
//	rtcorpus -dir testdata/scenarios -write             # re-record goldens after an intended change
//	rtcorpus -dir testdata/scenarios -scale 4 -out r.json  # nightly: 4x sizes, invariants only
//
// Every solve travels through an in-process rtserve (internal/service)
// over HTTP: the corpus therefore exercises JSON decoding, option
// validation, the worker pool and the result cache exactly as production
// traffic does, and each request is issued twice so the report records
// cache behavior (the repeat must be served from the cache).
//
// Verification, per corpus file:
//
//   - the spec must rebuild to its recorded canonical hash (determinism);
//   - each golden solver must reproduce makespan and resources exactly
//     (every registered solver is deterministic) with the recorded
//     optimality flag;
//   - an approximate solver's measured ratio must not exceed the recorded
//     ratio bound (quality gate);
//   - at -scale > 1 the instances differ from the goldens, so only the
//     soundness invariants are checked: certified bound <= metric, ratio
//     consistency, and cache hits on repeats.
//
// Exit status: 0 clean, 1 any verification failure, 2 usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/solver"
)

// SolveRecord is one solver's outcome on one scenario, as reported.
type SolveRecord struct {
	Solver       string  `json:"solver"`
	Makespan     int64   `json:"makespan"`
	Resources    int64   `json:"resources"`
	Exact        bool    `json:"exact,omitempty"`
	LPLowerBound float64 `json:"lp_lower_bound,omitempty"`
	Ratio        float64 `json:"ratio,omitempty"`
	RatioBound   float64 `json:"ratio_bound,omitempty"`
	Routing      string  `json:"routing,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	CachedRepeat bool    `json:"cached_repeat"`
	OK           bool    `json:"ok"`
	Mismatch     string  `json:"mismatch,omitempty"`
}

// ScenarioRecord aggregates one scenario's solves.
type ScenarioRecord struct {
	Name   string        `json:"name"`
	Family string        `json:"family"`
	Hash   string        `json:"hash"`
	Nodes  int           `json:"nodes"`
	Arcs   int           `json:"arcs"`
	Solves []SolveRecord `json:"solves"`
}

// Report is the machine-readable quality report.
type Report struct {
	Scale     int64               `json:"scale"`
	Scenarios []ScenarioRecord    `json:"scenarios"`
	Stats     service.GlobalStats `json:"service_stats"`
	Failures  int                 `json:"failures"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtcorpus: ")
	dir := flag.String("dir", "testdata/scenarios", "corpus directory")
	initCorpus := flag.Bool("init", false, "materialize the default corpus (specs + goldens) into -dir")
	write := flag.Bool("write", false, "re-solve existing corpus files and overwrite their goldens")
	scale := flag.Int64("scale", 1, "size multiplier; > 1 skips golden equality (nightly mode)")
	out := flag.String("out", "", "write the quality report JSON here (default stdout)")
	solversFlag := flag.String("solvers", "auto,frankwolfe", "solvers recorded per scenario at -init")
	flag.Parse()
	if *scale < 1 || (*initCorpus && *write) {
		flag.Usage()
		os.Exit(2)
	}

	srv, err := service.New(service.WithMaxBodyBytes(64 << 20))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	runner := &runner{base: ts.URL}

	switch {
	case *initCorpus:
		if err := runner.initCorpus(*dir, strings.Split(*solversFlag, ",")); err != nil {
			log.Fatal(err)
		}
		return
	case *write:
		if err := runner.rewrite(*dir); err != nil {
			log.Fatal(err)
		}
		return
	}

	rep, err := runner.verify(*dir, *scale, srv)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for _, sc := range rep.Scenarios {
		for _, sv := range sc.Solves {
			status := "ok"
			if !sv.OK {
				status = "FAIL " + sv.Mismatch
			}
			log.Printf("%-24s %-12s makespan=%-8d resources=%-6d ratio=%.3f wall=%.1fms cached=%v %s",
				sc.Name, sv.Solver, sv.Makespan, sv.Resources, sv.Ratio, sv.WallMS, sv.CachedRepeat, status)
		}
	}
	if rep.Failures > 0 {
		log.Fatalf("%d verification failure(s)", rep.Failures)
	}
	log.Printf("corpus clean: %d scenarios, cache hits %d/%d lookups",
		len(rep.Scenarios), rep.Stats.Cache.Hits, rep.Stats.Cache.Hits+rep.Stats.Cache.Misses)
}

// runner sends solves through the in-process service.
type runner struct {
	base string
}

// solveOnce posts one request and decodes the response.
func (r *runner) solveOnce(req service.SolveRequest) (service.SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.SolveResponse{}, err
	}
	resp, err := http.Post(r.base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return service.SolveResponse{}, err
	}
	defer resp.Body.Close()
	var sr service.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return service.SolveResponse{}, err
	}
	if sr.Error != "" {
		return sr, fmt.Errorf("service: %s", sr.Error)
	}
	if sr.Report == nil {
		return sr, fmt.Errorf("service: response without report")
	}
	return sr, nil
}

// solveTwice issues the identical request twice; the second response must
// come from the cache (or coalesce onto the first), which the record
// keeps.
func (r *runner) solveTwice(spec scenario.Spec, inst *core.Instance, name string) (SolveRecord, *solver.WireReport, error) {
	instJSON, err := json.Marshal(inst)
	if err != nil {
		return SolveRecord{}, nil, err
	}
	req := service.SolveRequest{Solver: name, Instance: instJSON}
	if spec.Budget != nil {
		req.Options.Budget = spec.Budget
	} else {
		req.Options.Target = spec.Target
	}
	first, err := r.solveOnce(req)
	if err != nil {
		return SolveRecord{}, nil, fmt.Errorf("%s/%s: %w", spec.Name, name, err)
	}
	repeat, err := r.solveOnce(req)
	if err != nil {
		return SolveRecord{}, nil, fmt.Errorf("%s/%s repeat: %w", spec.Name, name, err)
	}
	w := first.Report
	return SolveRecord{
		Solver:       name,
		Makespan:     w.Makespan,
		Resources:    w.Resources,
		Exact:        w.Exact,
		LPLowerBound: w.LPLowerBound,
		Ratio:        w.ApproxRatioUpperBound,
		Routing:      w.Routing,
		WallMS:       first.WallMS,
		CachedRepeat: repeat.Cached,
	}, w, nil
}

// loadEntries reads every corpus file in dir, sorted by name.
func loadEntries(dir string) ([]string, []scenario.CorpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no corpus files under %s (run rtcorpus -init)", dir)
	}
	sort.Strings(paths)
	entries := make([]scenario.CorpusEntry, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		if err := json.Unmarshal(data, &entries[i]); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return paths, entries, nil
}

// record solves the spec with each solver and produces the golden block.
func (r *runner) record(spec scenario.Spec, solvers []string) (scenario.CorpusEntry, error) {
	inst, err := spec.Build()
	if err != nil {
		return scenario.CorpusEntry{}, err
	}
	entry := scenario.CorpusEntry{
		Spec:  spec,
		Hash:  inst.CanonicalHash(),
		Nodes: inst.G.NumNodes(),
		Arcs:  inst.G.NumEdges(),
	}
	for _, name := range solvers {
		name = strings.TrimSpace(name)
		_, w, err := r.solveTwice(spec, inst, name)
		if err != nil {
			return scenario.CorpusEntry{}, err
		}
		g := scenario.Golden{
			Solver:       name,
			Makespan:     w.Makespan,
			Resources:    w.Resources,
			Exact:        w.Exact,
			LPLowerBound: w.LPLowerBound,
		}
		if w.ApproxRatioUpperBound > 0 {
			// One percent of headroom: quality regressions fail, float
			// jitter does not.
			g.RatioBound = w.ApproxRatioUpperBound * 1.01
		}
		entry.Golden = append(entry.Golden, g)
	}
	return entry, nil
}

func writeEntry(dir string, entry scenario.CorpusEntry) error {
	data, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(dir, entry.Spec.Name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %s (%d arcs, %d golden solves)", path, entry.Arcs, len(entry.Golden))
	return nil
}

func (r *runner) initCorpus(dir string, solvers []string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range scenario.DefaultCorpus() {
		entry, err := r.record(spec, solvers)
		if err != nil {
			return err
		}
		if err := writeEntry(dir, entry); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) rewrite(dir string) error {
	_, entries, err := loadEntries(dir)
	if err != nil {
		return err
	}
	for _, old := range entries {
		solvers := make([]string, len(old.Golden))
		for i, g := range old.Golden {
			solvers[i] = g.Solver
		}
		entry, err := r.record(old.Spec, solvers)
		if err != nil {
			return err
		}
		if err := writeEntry(dir, entry); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) verify(dir string, scale int64, srv *service.Server) (*Report, error) {
	_, entries, err := loadEntries(dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{Scale: scale}
	for _, entry := range entries {
		spec := entry.Spec.Scale(scale)
		inst, err := spec.Build()
		if err != nil {
			return nil, err
		}
		sc := ScenarioRecord{
			Name:   spec.Name,
			Family: spec.Family,
			Hash:   inst.CanonicalHash(),
			Nodes:  inst.G.NumNodes(),
			Arcs:   inst.G.NumEdges(),
		}
		hashOK := scale > 1 || sc.Hash == entry.Hash
		for _, g := range entry.Golden {
			rec, w, err := r.solveTwice(spec, inst, g.Solver)
			if err != nil {
				rec = SolveRecord{Solver: g.Solver, Mismatch: err.Error()}
				rep.Failures++
				sc.Solves = append(sc.Solves, rec)
				continue
			}
			rec.RatioBound = g.RatioBound
			rec.OK, rec.Mismatch = check(&rec, w, g, hashOK, scale, spec.Budget, spec.Target)
			if !rec.OK {
				rep.Failures++
			}
			sc.Solves = append(sc.Solves, rec)
		}
		if !hashOK && len(entry.Golden) == 0 {
			rep.Failures++
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	rep.Stats = srv.Stats()
	return rep, nil
}

// check applies the verification rules to one solve.
func check(rec *SolveRecord, w *solver.WireReport, g scenario.Golden, hashOK bool, scale int64, budget, target *int64) (bool, string) {
	var problems []string
	if !hashOK {
		problems = append(problems, "canonical hash drifted from the recorded golden")
	}
	if scale == 1 {
		if rec.Makespan != g.Makespan || rec.Resources != g.Resources {
			problems = append(problems, fmt.Sprintf("golden mismatch: got makespan=%d resources=%d, recorded %d/%d",
				rec.Makespan, rec.Resources, g.Makespan, g.Resources))
		}
		if rec.Exact != g.Exact {
			problems = append(problems, fmt.Sprintf("optimality drifted: exact=%v, recorded %v", rec.Exact, g.Exact))
		}
		if g.LPLowerBound > 0 && math.Abs(rec.LPLowerBound-g.LPLowerBound) > 1e-6*math.Max(1, g.LPLowerBound) {
			problems = append(problems, fmt.Sprintf("certified bound drifted: %.6f, recorded %.6f", rec.LPLowerBound, g.LPLowerBound))
		}
		if g.RatioBound > 0 && rec.Ratio > g.RatioBound+1e-9 {
			problems = append(problems, fmt.Sprintf("approximation ratio %.4f exceeds the recorded bound %.4f", rec.Ratio, g.RatioBound))
		}
	}
	// Soundness invariants, any scale.  Note the certified bound is
	// relative to the STATED budget: a bi-criteria solution may overspend
	// (up to B/(1-alpha)) and beat it, so "bound <= makespan" only
	// applies to budget-respecting solves, and ratios below 1 are
	// legitimate for overspenders.
	if w.Objective == "min-makespan" && budget != nil && rec.Resources <= *budget &&
		rec.LPLowerBound > float64(rec.Makespan)+1e-6 {
		problems = append(problems, fmt.Sprintf("certified bound %.4f exceeds the makespan %d of a budget-respecting solve",
			rec.LPLowerBound, rec.Makespan))
	}
	if target != nil {
		// Feasibility depends on the solver's contract: exact, spdp and
		// frankwolfe deliver makespan <= T, but bicriteria-resource only
		// guarantees makespan <= T/alpha (alpha is the 0.5 default here),
		// so holding it to T would fail contract-compliant solves.
		limit := *target
		if w.Solver == "bicriteria-resource" {
			limit = 2 * *target
		}
		if rec.Makespan > limit {
			problems = append(problems, fmt.Sprintf("makespan %d exceeds the %q target contract (limit %d for target %d)",
				rec.Makespan, w.Solver, limit, *target))
		}
	}
	if rec.Ratio > 0 && rec.LPLowerBound > 0 {
		metric := float64(rec.Makespan)
		if w.Objective == "min-resource" {
			metric = float64(rec.Resources)
		}
		if metric > 0 && math.Abs(rec.Ratio*rec.LPLowerBound-metric) > 1e-6*math.Max(1, metric) {
			problems = append(problems, fmt.Sprintf("ratio %.4f inconsistent with metric %.0f / bound %.4f",
				rec.Ratio, metric, rec.LPLowerBound))
		}
	}
	if !rec.CachedRepeat {
		problems = append(problems, "identical repeat request was not served from the cache")
	}
	if len(problems) == 0 {
		return true, ""
	}
	return false, strings.Join(problems, "; ")
}

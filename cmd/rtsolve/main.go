// Command rtsolve solves a resource-time tradeoff instance from JSON
// through the unified solver registry.
//
//	rtsolve -in instance.json -budget 8                  # auto-dispatch
//	rtsolve -in instance.json -budget 8 -algo bicriteria [-alpha 0.5]
//	rtsolve -in instance.json -target 20 -algo exact [-deadline 30s]
//	rtsolve -in instance.json -budget 8 -algo exact -parallel 4
//	rtsolve -in instance.json -frontier 0:10             # tradeoff curve
//	rtsolve -in instance.json -frontier 0:10:6 -server http://localhost:8080
//	rtsolve -list                                        # solver table
//
// -frontier lo:hi[:steps] sweeps the budget range and prints the
// resource-time tradeoff curve, compiling the instance once and
// warm-starting each solve from its smaller-budget neighbor's witness.
// With -server the sweep runs remotely through POST /v1/frontier instead,
// sharing the service's caches and durable store.
//
// -parallel sizes the parallel solvers' worker gangs (0 means
// GOMAXPROCS): the exact branch-and-bound's work-stealing pool, the
// scale tier's level-parallel sweeps, and auto's option to race exact
// against the bi-criteria rounding near the exact-search threshold.
//
// With -budget the makespan is minimized; with -target the resource
// usage is minimized.  The registry rejects unsupported combinations up
// front (e.g. -target with kway5, which only minimizes makespan under a
// budget) instead of silently falling through.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtsolve: ")
	in := flag.String("in", "", "instance JSON file (required)")
	budget := flag.Int64("budget", -1, "resource budget (minimize makespan)")
	target := flag.Int64("target", -1, "makespan target (minimize resources)")
	algo := flag.String("algo", "auto", "solver name; see -list")
	alpha := flag.Float64("alpha", 0.5, "alpha for the bi-criteria solvers")
	maxNodes := flag.Int("maxnodes", 0, "search-node budget for exact (0: default)")
	parallel := flag.Int("parallel", 0, "solver workers: search pool and sweep gang (0: GOMAXPROCS, 1: sequential)")
	deadline := flag.Duration("deadline", 0, "wall-time limit (e.g. 30s; 0: none)")
	frontier := flag.String("frontier", "", "budget sweep lo:hi[:steps]; prints the tradeoff curve")
	server := flag.String("server", "", "rtserve base URL; runs the -frontier sweep remotely")
	list := flag.Bool("list", false, "list registered solvers and exit")
	flag.Parse()

	if *list {
		listSolvers()
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *frontier != "" {
		if *budget >= 0 || *target >= 0 {
			log.Fatal("-frontier supplies its own budgets; drop -budget/-target")
		}
		runFrontier(*in, *frontier, *algo, *server, *alpha, *maxNodes, *parallel)
		return
	}
	if *server != "" {
		log.Fatal("-server currently applies to -frontier sweeps only")
	}
	if (*budget < 0) == (*target < 0) {
		log.Fatal("exactly one of -budget or -target is required")
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	var inst core.Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d nodes, %d arcs, zero-flow makespan %d\n",
		inst.G.NumNodes(), inst.G.NumEdges(), inst.ZeroFlowMakespan())

	opts := []solver.Option{
		solver.WithAlpha(*alpha),
		solver.WithMaxNodes(*maxNodes),
		solver.WithParallelism(*parallel),
	}
	if *budget >= 0 {
		opts = append(opts, solver.WithBudget(*budget))
	} else {
		opts = append(opts, solver.WithTarget(*target))
	}
	if *deadline > 0 {
		opts = append(opts, solver.WithDeadline(time.Now().Add(*deadline)))
	}

	rep, err := solver.Solve(context.Background(), *algo, &inst, opts...)
	if err != nil {
		if rep == nil {
			log.Fatal(err)
		}
		// Interrupted with a partial solution in hand: report it, but
		// exit distinctly so scripts can tell partial from complete.
		fmt.Printf("interrupted: %v\n", err)
		printReport(rep)
		os.Exit(3)
	}
	printReport(rep)
}

func printReport(rep *solver.Report) {
	fmt.Printf("solution: makespan %d, resources %d\n", rep.Sol.Makespan, rep.Sol.Value)
	fmt.Printf("solver:   %s (%s)\n", rep.Solver, rep.Guarantee)
	if rep.Routing != "" {
		fmt.Printf("routing:  %s\n", rep.Routing)
	}
	if rep.LowerBound > 0 {
		fmt.Printf("bound:    %v >= %.2f\n", rep.Objective, rep.LowerBound)
	}
	if rep.ApproxRatioUpperBound > 0 {
		fmt.Printf("ratio:    <= %.3f (vs certified relaxation bound %.2f)\n",
			rep.ApproxRatioUpperBound, rep.LPLowerBound)
	}
	if rep.Nodes > 0 {
		fmt.Printf("search:   %d nodes, complete %v\n", rep.Nodes, rep.Complete)
	}
	if rep.Sweep != "" {
		fmt.Printf("sweep:    %s\n", rep.Sweep)
	}
	fmt.Printf("wall:     %v\n", rep.Wall)
}

func listSolvers() {
	fmt.Printf("%-20s %-8s %-8s %-8s %s\n", "NAME", "BUDGET", "TARGET", "EXACT", "GUARANTEE")
	for _, s := range solver.List() {
		caps := s.Capabilities()
		var notes []string
		if caps.SeriesParallelOnly {
			notes = append(notes, "series-parallel only")
		}
		if caps.Classes != nil {
			notes = append(notes, "classes: "+strings.Join(caps.Classes, ","))
		}
		if caps.Parallel {
			notes = append(notes, "parallel")
		}
		extra := ""
		if len(notes) > 0 {
			extra = " [" + strings.Join(notes, "; ") + "]"
		}
		fmt.Printf("%-20s %-8v %-8v %-8v %s%s\n",
			s.Name(), caps.Budget, caps.Target, caps.Exact, caps.Guarantee, extra)
	}
}

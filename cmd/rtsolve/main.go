// Command rtsolve solves a resource-time tradeoff instance from JSON.
//
//	rtsolve -in instance.json -budget 8 -algo bicriteria [-alpha 0.5]
//	rtsolve -in instance.json -target 20 -algo exact
//
// Algorithms: exact, bicriteria, kway5, binary4, binarybi, spdp.
// With -budget the makespan is minimized; with -target the resource usage
// is minimized (exact, bicriteria and spdp only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/sp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtsolve: ")
	in := flag.String("in", "", "instance JSON file (required)")
	budget := flag.Int64("budget", -1, "resource budget (minimize makespan)")
	target := flag.Int64("target", -1, "makespan target (minimize resources)")
	algo := flag.String("algo", "exact", "exact | bicriteria | kway5 | binary4 | binarybi | spdp")
	alpha := flag.Float64("alpha", 0.5, "alpha for bicriteria")
	maxNodes := flag.Int("maxnodes", 1<<20, "search-node budget for exact")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if (*budget < 0) == (*target < 0) {
		log.Fatal("exactly one of -budget or -target is required")
	}

	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	var inst core.Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d nodes, %d arcs, zero-flow makespan %d\n",
		inst.G.NumNodes(), inst.G.NumEdges(), inst.ZeroFlowMakespan())

	report := func(sol core.Solution, extra string) {
		fmt.Printf("solution: makespan %d, resources %d%s\n", sol.Makespan, sol.Value, extra)
	}

	switch *algo {
	case "exact":
		opts := &exact.Options{MaxNodes: *maxNodes}
		if *budget >= 0 {
			sol, stats, err := exact.MinMakespan(&inst, *budget, opts)
			if err != nil {
				log.Fatal(err)
			}
			report(sol, fmt.Sprintf(" (nodes %d, complete %v)", stats.Nodes, stats.Complete))
		} else {
			sol, stats, err := exact.MinResource(&inst, *target, opts)
			if err != nil {
				log.Fatal(err)
			}
			report(sol, fmt.Sprintf(" (nodes %d, complete %v)", stats.Nodes, stats.Complete))
		}
	case "bicriteria":
		var res *approx.Result
		if *budget >= 0 {
			res, err = approx.BiCriteria(&inst, *budget, *alpha)
		} else {
			res, err = approx.BiCriteriaResource(&inst, *target, *alpha)
		}
		if err != nil {
			log.Fatal(err)
		}
		report(res.Sol, fmt.Sprintf(" (LP bound %.2f)", res.LPObjective))
	case "kway5", "binary4", "binarybi":
		if *budget < 0 {
			log.Fatalf("%s minimizes makespan; use -budget", *algo)
		}
		var res *approx.Result
		switch *algo {
		case "kway5":
			res, err = approx.KWay5(&inst, *budget)
		case "binary4":
			res, err = approx.Binary4(&inst, *budget)
		default:
			res, err = approx.BinaryBiCriteria(&inst, *budget)
		}
		if err != nil {
			log.Fatal(err)
		}
		report(res.Sol, fmt.Sprintf(" (LP bound %.2f)", res.LPObjective))
	case "spdp":
		tree, ok := sp.Recognize(&inst)
		if !ok {
			log.Fatal("instance is not two-terminal series-parallel")
		}
		b := *budget
		if b < 0 {
			b = inst.MaxUsefulBudget()
		}
		tables, err := sp.Solve(tree, b)
		if err != nil {
			log.Fatal(err)
		}
		if *budget >= 0 {
			m, err := tables.Makespan(*budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("solution: makespan %d with budget %d (exact, series-parallel DP)\n", m, *budget)
		} else {
			r, ok := tables.MinResource(*target)
			if !ok {
				log.Fatalf("makespan %d unreachable", *target)
			}
			fmt.Printf("solution: resources %d reach makespan <= %d (exact, series-parallel DP)\n", r, *target)
		}
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/solver"
)

// runFrontier sweeps the budget range spec ("lo:hi[:steps]") over the
// instance in path and prints the resource-time tradeoff curve.  Locally
// the instance compiles once and each solve warm-starts from its
// smaller-budget neighbor's witness flow; with serverURL set the sweep
// runs remotely through POST /v1/frontier instead.
func runFrontier(path, spec, algo, serverURL string, alpha float64, maxNodes, parallel int) {
	lo, hi, steps, err := parseSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if serverURL != "" {
		remoteFrontier(serverURL, data, algo, lo, hi, steps, alpha, maxNodes, parallel)
		return
	}
	var inst core.Instance
	if err := json.Unmarshal(data, &inst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d nodes, %d arcs, zero-flow makespan %d\n",
		inst.G.NumNodes(), inst.G.NumEdges(), inst.ZeroFlowMakespan())
	c := core.Compile(&inst)
	printFrontierHeader()
	var prevFlow []int64
	for _, b := range sweepPoints(lo, hi, steps) {
		opts := []solver.Option{
			solver.WithBudget(b),
			solver.WithAlpha(alpha),
			solver.WithMaxNodes(maxNodes),
			solver.WithParallelism(parallel),
		}
		warm := prevFlow != nil
		if warm {
			opts = append(opts, solver.WithIncumbent(prevFlow))
		}
		rep, err := solver.SolveCompiled(context.Background(), algo, c, opts...)
		if err != nil {
			log.Fatalf("budget %d: %v", b, err)
		}
		printFrontierPoint(b, rep.Sol.Makespan, rep.Sol.Value, rep.LowerBound,
			rep.Exact && rep.Complete, warm, float64(rep.Wall)/float64(time.Millisecond))
		if rep.Complete && len(rep.Sol.Flow) > 0 {
			prevFlow = rep.Sol.Flow
		}
	}
}

// remoteFrontier posts the sweep to an rtserve instance and prints its
// FrontierResponse in the same table form as the local sweep.
func remoteFrontier(serverURL string, instance []byte, algo string, lo, hi int64, steps int, alpha float64, maxNodes, parallel int) {
	req := service.FrontierRequest{
		Solver:    algo,
		Instance:  instance,
		BudgetMin: lo,
		BudgetMax: hi,
		Steps:     steps,
		Options:   service.WireOptionsNoMode{MaxNodes: maxNodes, Parallelism: parallel},
	}
	if alpha != 0.5 {
		req.Options.Alpha = &alpha
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	url := strings.TrimRight(serverURL, "/") + "/v1/frontier"
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(httpResp.Body).Decode(&e)
		log.Fatalf("%s: %s: %s", url, httpResp.Status, e.Error)
	}
	var resp service.FrontierResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %s via %s\n", resp.Hash, url)
	printFrontierHeader()
	for _, pt := range resp.Points {
		if pt.Error != "" {
			fmt.Printf("%8d  error: %s\n", pt.Budget, pt.Error)
			continue
		}
		printFrontierPoint(pt.Budget, pt.Makespan, pt.Resources, pt.LowerBound,
			pt.Exact && pt.Complete, pt.Warm, pt.WallMS)
	}
	fmt.Printf("sweep:    %d points, %d warm starts, monotone %v, %.1fms\n",
		len(resp.Points), resp.WarmHits, resp.Monotone, resp.WallMS)
	if resp.Error != "" {
		log.Fatalf("sweep truncated: %s", resp.Error)
	}
}

func printFrontierHeader() {
	fmt.Printf("%8s  %8s  %9s  %10s  %-7s  %-4s  %s\n",
		"BUDGET", "MAKESPAN", "RESOURCES", "BOUND", "OPTIMAL", "WARM", "WALL")
}

func printFrontierPoint(budget, makespan, resources int64, bound float64, optimal, warm bool, wallMS float64) {
	fmt.Printf("%8d  %8d  %9d  %10.2f  %-7v  %-4v  %.1fms\n",
		budget, makespan, resources, bound, optimal, warm, wallMS)
}

// parseSweep parses "lo:hi[:steps]".
func parseSweep(spec string) (lo, hi int64, steps int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("invalid -frontier %q: want lo:hi[:steps]", spec)
	}
	if lo, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("invalid -frontier lo %q: %v", parts[0], err)
	}
	if hi, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, 0, fmt.Errorf("invalid -frontier hi %q: %v", parts[1], err)
	}
	steps = 8
	if len(parts) == 3 {
		if steps, err = strconv.Atoi(parts[2]); err != nil {
			return 0, 0, 0, fmt.Errorf("invalid -frontier steps %q: %v", parts[2], err)
		}
	}
	if lo < 0 || hi < lo || steps < 2 {
		return 0, 0, 0, fmt.Errorf("invalid -frontier %q: need 0 <= lo <= hi and steps >= 2", spec)
	}
	return lo, hi, steps, nil
}

// sweepPoints samples [lo, hi] at steps ascending budgets, deduplicated
// when the integer range is narrower than the step count.
func sweepPoints(lo, hi int64, steps int) []int64 {
	span := hi - lo
	budgets := make([]int64, 0, steps)
	for i := 0; i < steps; i++ {
		b := lo + span*int64(i)/int64(steps-1)
		if n := len(budgets); n > 0 && budgets[n-1] == b {
			continue
		}
		budgets = append(budgets, b)
	}
	return budgets
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp materializes benchmark text as an open file for parseBench,
// which reads *os.File (it normally consumes stdin or -in).
func writeTemp(t *testing.T, text string) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(text+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// bench builds the map a recorded baseline would hold for the given
// name -> ns/op pairs (allocations are irrelevant to the scaling gate).
func bench(pairs map[string]float64) map[string]Record {
	m := make(map[string]Record, len(pairs))
	for name, ns := range pairs {
		m[name] = Record{NsOp: ns, AllocsOp: -1}
	}
	return m
}

// TestScalingGroupsAnchorsAndSorts: families come back name-sorted with
// ascending rungs, speedups normalized to the p=1 anchor, and non-sweep
// benchmarks ignored.
func TestScalingGroupsAnchorsAndSorts(t *testing.T) {
	groups, err := scalingGroups(bench(map[string]float64{
		"BenchmarkZeta/p=2":    500,
		"BenchmarkZeta/p=1":    1000,
		"BenchmarkAlpha/p=8":   250,
		"BenchmarkAlpha/p=1":   1000,
		"BenchmarkAlpha/p=4":   400,
		"BenchmarkOther":       77, // not a sweep
		"BenchmarkOther/sub=3": 88, // sub-benchmark, but not a p= rung
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d families, want 2: %+v", len(groups), groups)
	}
	if groups[0].name != "BenchmarkAlpha" || groups[1].name != "BenchmarkZeta" {
		t.Fatalf("families not name-sorted: %q, %q", groups[0].name, groups[1].name)
	}
	alpha := groups[0]
	wantProcs := []int{1, 4, 8}
	wantSpeedup := []float64{1.0, 2.5, 4.0}
	if len(alpha.rungs) != len(wantProcs) {
		t.Fatalf("alpha rungs: %+v", alpha.rungs)
	}
	for i, r := range alpha.rungs {
		if r.procs != wantProcs[i] || r.speedup != wantSpeedup[i] {
			t.Fatalf("alpha rung %d: got p=%d %.2fx, want p=%d %.2fx",
				i, r.procs, r.speedup, wantProcs[i], wantSpeedup[i])
		}
	}
}

// TestScalingGroupsRequiresAnchor: a sweep without p=1 cannot be
// normalized and must be a hard error, not a silent skip.
func TestScalingGroupsRequiresAnchor(t *testing.T) {
	_, err := scalingGroups(bench(map[string]float64{
		"BenchmarkNoAnchor/p=2": 500,
		"BenchmarkNoAnchor/p=4": 300,
	}))
	if err == nil || !strings.Contains(err.Error(), "no p=1 anchor") {
		t.Fatalf("want a missing-anchor error, got %v", err)
	}
}

// TestScalingVerdictGates: a rung slower than sequential fails, a p=4
// rung under the efficiency target warns, and a healthy sweep does
// neither.  Sub-2x speedups at rungs other than p=4 are not warned - the
// soft target is specified at 4 workers only.
func TestScalingVerdictGates(t *testing.T) {
	groups, err := scalingGroups(bench(map[string]float64{
		// Healthy: 3.2x at p=4.
		"BenchmarkGood/p=1": 1000,
		"BenchmarkGood/p=4": 312.5,
		// Inefficient but not regressed: 1.25x at p=4.
		"BenchmarkLazy/p=1": 1000,
		"BenchmarkLazy/p=4": 800,
		// Regressed: p=8 is slower than p=1.
		"BenchmarkBad/p=1": 1000,
		"BenchmarkBad/p=2": 900, // 1.11x: above water, no warning (not p=4)
		"BenchmarkBad/p=8": 1200,
	}))
	if err != nil {
		t.Fatal(err)
	}
	failures, warnings := scalingVerdict(groups, 2.0)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkBad/p=8") {
		t.Fatalf("failures = %v; want exactly the BenchmarkBad/p=8 regression", failures)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "BenchmarkLazy/p=4") {
		t.Fatalf("warnings = %v; want exactly the BenchmarkLazy/p=4 efficiency nudge", warnings)
	}
}

// TestScalingVerdictExactlyOne: speedup exactly 1.0 at p>1 passes the
// regression gate (not strictly slower), and exactly the warn threshold
// at p=4 passes the warning gate (the comparison is strict-below).
func TestScalingVerdictExactlyOne(t *testing.T) {
	groups, err := scalingGroups(bench(map[string]float64{
		"BenchmarkFlat/p=1": 1000,
		"BenchmarkFlat/p=2": 1000, // exactly 1.0x
		"BenchmarkFlat/p=4": 500,  // exactly 2.0x
	}))
	if err != nil {
		t.Fatal(err)
	}
	failures, warnings := scalingVerdict(groups, 2.0)
	if len(failures) != 0 || len(warnings) != 0 {
		t.Fatalf("boundary speedups must pass clean; failures=%v warnings=%v", failures, warnings)
	}
}

// TestParseBenchKeepsMinima: repeated lines for one benchmark keep the
// minimum ns/op and allocs/op independently, and the -GOMAXPROCS suffix
// is stripped so runs on different core counts share names.
func TestParseBenchKeepsMinima(t *testing.T) {
	f := writeTemp(t, strings.Join([]string{
		"goos: linux",
		"BenchmarkExactParallel/p=4-8        3   2000000 ns/op   512 B/op   40 allocs/op",
		"BenchmarkExactParallel/p=4-8        3   1500000 ns/op   512 B/op   44 allocs/op",
		"BenchmarkNoMem-8                    5    900 ns/op",
		"PASS",
	}, "\n"))
	mins, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := mins["BenchmarkExactParallel/p=4"]
	if !ok {
		t.Fatalf("CPU suffix not stripped: %v", mins)
	}
	if rec.NsOp != 1500000 || rec.AllocsOp != 40 {
		t.Fatalf("minima not kept per-metric: %+v", rec)
	}
	if rec := mins["BenchmarkNoMem"]; rec.NsOp != 900 || rec.AllocsOp != -1 {
		t.Fatalf("benchmem-less line misparsed: %+v", rec)
	}
}

// Command benchdiff records Go benchmark output as a JSON baseline and
// compares later runs against it, failing on aggregate regressions.  It is
// the core of CI's benchmark-regression gate.
//
//	go test -bench . -benchtime=3x -count=3 -run='^$' ./... > bench.txt
//	benchdiff -record -in bench.txt -out BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json -new bench_new.json -threshold 1.30
//
// Recording parses `ns/op` lines, strips the -GOMAXPROCS suffix, and keeps
// the MINIMUM across repetitions of each benchmark: the minimum is the
// least noisy location statistic for benchmark times (noise on shared CI
// runners is strictly additive).
//
// Comparison computes the geometric mean of the per-benchmark new/old
// ratios over the benchmarks present on both sides, and exits nonzero if
// it exceeds the threshold.  A geomean over everything, rather than a
// per-benchmark gate, keeps single-benchmark jitter from failing builds
// while still catching a real across-the-board slowdown; per-benchmark
// outliers are printed so a local regression is visible in the log even
// when the gate passes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark record.
type Baseline struct {
	Schema int `json:"schema"`
	// Unit is what the numbers measure; always ns/op today.
	Unit string `json:"unit"`
	// Benchmarks maps benchmark name (sub-benchmarks included, CPU suffix
	// stripped) to its minimum observed ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   3   123456 ns/op ...` including
// sub-benchmarks and extra ReportMetric columns after ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	record := flag.Bool("record", false, "parse benchmark text (-in) into a JSON baseline (-out)")
	in := flag.String("in", "", "benchmark text input for -record (default stdin)")
	out := flag.String("out", "", "JSON output for -record (default stdout)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to compare against")
	newPath := flag.String("new", "", "fresh baseline JSON (from -record) to compare")
	threshold := flag.Float64("threshold", 1.30, "max allowed geomean ratio new/old")
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*in, *out); err != nil {
			log.Fatal(err)
		}
	case *baselinePath != "" && *newPath != "":
		ok, err := doCompare(*baselinePath, *newPath, *threshold)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// parseBench reads `go test -bench` text and returns min ns/op per name.
func parseBench(r *os.File) (map[string]float64, error) {
	mins := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		if prev, ok := mins[m[1]]; !ok || ns < prev {
			mins[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(mins) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return mins, nil
}

func doRecord(inPath, outPath string) error {
	f := os.Stdin
	if inPath != "" {
		var err error
		f, err = os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	mins, err := parseBench(f)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(Baseline{Schema: 1, Unit: "ns/op", Benchmarks: mins}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return b, nil
}

func doCompare(basePath, newPath string, threshold float64) (bool, error) {
	base, err := loadBaseline(basePath)
	if err != nil {
		return false, err
	}
	fresh, err := loadBaseline(newPath)
	if err != nil {
		return false, err
	}

	type row struct {
		name       string
		old, fresh float64
		ratio      float64
	}
	var rows []row
	var logSum float64
	for name, oldNS := range base.Benchmarks {
		newNS, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("WARN  %-50s missing from the new run\n", name)
			continue
		}
		if oldNS <= 0 || newNS <= 0 {
			continue
		}
		r := row{name: name, old: oldNS, fresh: newNS, ratio: newNS / oldNS}
		logSum += math.Log(r.ratio)
		rows = append(rows, r)
	}
	for name := range fresh.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NOTE  %-50s new benchmark, not gated yet\n", name)
		}
	}
	if len(rows) == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", basePath, newPath)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	fmt.Printf("%-50s %14s %14s %8s\n", "BENCHMARK", "OLD ns/op", "NEW ns/op", "RATIO")
	for _, r := range rows {
		marker := ""
		if r.ratio > threshold {
			marker = "  <-- regressed"
		}
		fmt.Printf("%-50s %14.1f %14.1f %8.3f%s\n", r.name, r.old, r.fresh, r.ratio, marker)
	}

	geomean := math.Exp(logSum / float64(len(rows)))
	fmt.Printf("\ngeomean ratio over %d benchmarks: %.3f (threshold %.3f)\n",
		len(rows), geomean, threshold)
	if geomean > threshold {
		fmt.Printf("FAIL: aggregate benchmark regression of %.1f%% exceeds the %.1f%% gate\n",
			(geomean-1)*100, (threshold-1)*100)
		return false, nil
	}
	fmt.Println("PASS")
	return true, nil
}

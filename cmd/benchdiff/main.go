// Command benchdiff records Go benchmark output as a JSON baseline and
// compares later runs against it, failing on aggregate regressions.  It is
// the core of CI's benchmark-regression gate.
//
//	go test -bench . -benchmem -benchtime=3x -count=3 -run='^$' ./... > bench.txt
//	benchdiff -record -in bench.txt -out BENCH_baseline.json
//	benchdiff -baseline BENCH_baseline.json -new bench_new.json -threshold 1.30 -alloc-threshold 1.15
//	benchdiff -scaling bench_new.json
//
// Recording parses `ns/op` (and, when present, `allocs/op`) lines, strips
// the -GOMAXPROCS suffix, and keeps the MINIMUM across repetitions of each
// benchmark: the minimum is the least noisy location statistic for
// benchmark times (noise on shared CI runners is strictly additive).
//
// Comparison computes the geometric mean of the per-benchmark new/old
// ratios over the benchmarks present on both sides and exits nonzero if it
// exceeds the threshold.  Times and allocations are gated SEPARATELY:
// ns/op wobbles with the runner's neighbors, so its threshold is loose;
// allocs/op is a deterministic count on a 1-core container, so its
// threshold can be tight and catches "someone dropped the buffer reuse"
// regressions that hide inside timing noise.  Zero-allocation benchmarks
// are compared through (allocs+1), keeping 0 -> 0 a clean ratio of 1 and
// 0 -> N a real regression.  Per-benchmark outliers are printed so a
// local regression is visible in the log even when the gate passes.
//
// The -scaling mode checks PARALLEL speedup within a single recorded run
// rather than drift between runs: every `name/p=N` sub-benchmark family
// (the repo's convention for parallelism sweeps, e.g.
// BenchmarkExactParallel/p=4) is anchored at its p=1 member and the
// speedup ns/op(p=1) / ns/op(p=N) is reported per rung.  A speedup below
// 1.0 at any p means adding workers made the solve SLOWER - a coordination
// regression, and the gate fails; a p=4 speedup below -scaling-warn
// (default 2.0x) is printed as a warning, because on a shared runner a
// soft efficiency target is a nudge, not a verdict.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Record is one benchmark's recorded measurements.
type Record struct {
	// NsOp is the minimum observed ns/op.
	NsOp float64 `json:"ns_op"`
	// AllocsOp is the minimum observed allocs/op; -1 when the run did not
	// report allocations (-benchmem absent).
	AllocsOp float64 `json:"allocs_op"`
}

// Baseline is the committed benchmark record.
type Baseline struct {
	// Schema 2 stores ns/op and allocs/op per benchmark; schema 1 (ns/op
	// only, plain map) is still read for old baselines.
	Schema int `json:"schema"`
	// Benchmarks maps benchmark name (sub-benchmarks included, CPU suffix
	// stripped) to its record.
	Benchmarks map[string]Record `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  3  123456 ns/op  99 B/op  4 allocs/op`
// including sub-benchmarks, extra ReportMetric columns, and runs without
// -benchmem (the B/op and allocs/op groups are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9.]+) allocs/op)?`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	record := flag.Bool("record", false, "parse benchmark text (-in) into a JSON baseline (-out)")
	in := flag.String("in", "", "benchmark text input for -record (default stdin)")
	out := flag.String("out", "", "JSON output for -record (default stdout)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to compare against")
	newPath := flag.String("new", "", "fresh baseline JSON (from -record) to compare")
	threshold := flag.Float64("threshold", 1.30, "max allowed geomean ratio new/old for ns/op")
	allocThreshold := flag.Float64("alloc-threshold", 1.15, "max allowed geomean ratio new/old for allocs/op")
	scalingPath := flag.String("scaling", "", "recorded baseline JSON whose name/p=N groups are gated for parallel speedup")
	scalingWarn := flag.Float64("scaling-warn", 2.0, "warn when the p=4 speedup falls below this ratio")
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*in, *out); err != nil {
			log.Fatal(err)
		}
	case *scalingPath != "":
		ok, err := doScaling(*scalingPath, *scalingWarn)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	case *baselinePath != "" && *newPath != "":
		ok, err := doCompare(*baselinePath, *newPath, *threshold, *allocThreshold)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// parseBench reads `go test -bench` text and returns min ns/op and min
// allocs/op per name.
func parseBench(r *os.File) (map[string]Record, error) {
	mins := make(map[string]Record)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		allocs := -1.0
		if m[3] != "" {
			if allocs, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
		}
		rec, seen := mins[m[1]]
		if !seen {
			mins[m[1]] = Record{NsOp: ns, AllocsOp: allocs}
			continue
		}
		if ns < rec.NsOp {
			rec.NsOp = ns
		}
		if allocs >= 0 && (rec.AllocsOp < 0 || allocs < rec.AllocsOp) {
			rec.AllocsOp = allocs
		}
		mins[m[1]] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(mins) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return mins, nil
}

func doRecord(inPath, outPath string) error {
	f := os.Stdin
	if inPath != "" {
		var err error
		f, err = os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	mins, err := parseBench(f)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(Baseline{Schema: 2, Benchmarks: mins}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil || b.Schema < 2 {
		// Schema 1 stored a plain name -> ns/op map; read it so freshly
		// updated checkouts can still compare against an old committed
		// baseline.
		var v1 struct {
			Schema     int                `json:"schema"`
			Benchmarks map[string]float64 `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &v1); err != nil {
			return b, fmt.Errorf("%s: %w", path, err)
		}
		b = Baseline{Schema: 1, Benchmarks: make(map[string]Record, len(v1.Benchmarks))}
		for name, ns := range v1.Benchmarks {
			b.Benchmarks[name] = Record{NsOp: ns, AllocsOp: -1}
		}
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return b, nil
}

// sortedNames returns the benchmark names of m in sorted order.
func sortedNames(m map[string]Record) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// gate is one metric's aggregate comparison.
type gate struct {
	label     string
	threshold float64
	logSum    float64
	n         int
}

func (g *gate) add(ratio float64) {
	g.logSum += math.Log(ratio)
	g.n++
}

// verdict prints the geomean and reports pass/fail.
func (g *gate) verdict() bool {
	if g.n == 0 {
		return true
	}
	geomean := math.Exp(g.logSum / float64(g.n))
	fmt.Printf("geomean %s ratio over %d benchmarks: %.3f (threshold %.3f)\n",
		g.label, g.n, geomean, g.threshold)
	if geomean > g.threshold {
		fmt.Printf("FAIL: aggregate %s regression of %.1f%% exceeds the %.1f%% gate\n",
			g.label, (geomean-1)*100, (g.threshold-1)*100)
		return false
	}
	return true
}

// doCompare prints the comparison and renders the gate verdict.  Its
// whole report is ordering-sensitive: WARN/NOTE lines and the ratio table
// must come out identically for identical inputs (CI logs are diffed
// across runs), so both baselines are walked in sorted name order.
//
//rt:deterministic
func doCompare(basePath, newPath string, threshold, allocThreshold float64) (bool, error) {
	base, err := loadBaseline(basePath)
	if err != nil {
		return false, err
	}
	fresh, err := loadBaseline(newPath)
	if err != nil {
		return false, err
	}

	type row struct {
		name        string
		old, fresh  Record
		ratio       float64 // ns/op
		allocsRatio float64 // -1 when either side lacks allocations
	}
	var rows []row
	nsGate := &gate{label: "ns/op", threshold: threshold}
	allocGate := &gate{label: "allocs/op", threshold: allocThreshold}
	for _, name := range sortedNames(base.Benchmarks) {
		oldRec := base.Benchmarks[name]
		newRec, ok := fresh.Benchmarks[name]
		if !ok {
			fmt.Printf("WARN  %-50s missing from the new run\n", name)
			continue
		}
		if oldRec.NsOp <= 0 || newRec.NsOp <= 0 {
			continue
		}
		r := row{name: name, old: oldRec, fresh: newRec, ratio: newRec.NsOp / oldRec.NsOp, allocsRatio: -1}
		nsGate.add(r.ratio)
		if oldRec.AllocsOp >= 0 && newRec.AllocsOp >= 0 {
			// +1 smoothing keeps zero-allocation benchmarks comparable:
			// 0 -> 0 is ratio 1, 0 -> 9 is a visible 10x.
			r.allocsRatio = (newRec.AllocsOp + 1) / (oldRec.AllocsOp + 1)
			allocGate.add(r.allocsRatio)
		}
		rows = append(rows, r)
	}
	for _, name := range sortedNames(fresh.Benchmarks) {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NOTE  %-50s new benchmark, not gated yet\n", name)
		}
	}
	if len(rows) == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", basePath, newPath)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	fmt.Printf("%-50s %14s %14s %8s %10s %10s %8s\n",
		"BENCHMARK", "OLD ns/op", "NEW ns/op", "RATIO", "OLD allocs", "NEW allocs", "RATIO")
	for _, r := range rows {
		marker := ""
		if r.ratio > threshold {
			marker = "  <-- time regressed"
		}
		if r.allocsRatio > allocThreshold {
			marker += "  <-- allocs regressed"
		}
		oldA, newA := "-", "-"
		ratioA := "-"
		if r.allocsRatio >= 0 {
			oldA = strconv.FormatFloat(r.old.AllocsOp, 'f', 0, 64)
			newA = strconv.FormatFloat(r.fresh.AllocsOp, 'f', 0, 64)
			ratioA = strconv.FormatFloat(r.allocsRatio, 'f', 3, 64)
		}
		fmt.Printf("%-50s %14.1f %14.1f %8.3f %10s %10s %8s%s\n",
			r.name, r.old.NsOp, r.fresh.NsOp, r.ratio, oldA, newA, ratioA, marker)
	}
	fmt.Println()

	nsOK := nsGate.verdict()
	allocOK := allocGate.verdict()
	if nsOK && allocOK {
		fmt.Println("PASS")
		return true, nil
	}
	return false, nil
}

// pBench splits a parallelism-sweep sub-benchmark (`Name/p=4`) into its
// family name and worker count.
var pBench = regexp.MustCompile(`^(.+)/p=([0-9]+)$`)

// scalingRung is one measured parallelism level of a sweep family.
type scalingRung struct {
	procs   int
	nsOp    float64
	speedup float64 // ns/op(p=1) / ns/op(procs); 1.0 at the anchor
}

// scalingGroup is one name/p=N family, anchored at its p=1 member.
type scalingGroup struct {
	name  string
	rungs []scalingRung // ascending procs, the p=1 anchor first
}

// scalingGroups extracts the name/p=N families from a recorded baseline,
// sorted by family name with rungs in ascending p order.  A family
// without a p=1 anchor is an error - its sweep cannot be normalized - and
// so is a rung with a non-positive time (a corrupt record).
func scalingGroups(bench map[string]Record) ([]scalingGroup, error) {
	families := make(map[string][]scalingRung)
	var order []string
	for _, name := range sortedNames(bench) {
		m := pBench.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		procs, err := strconv.Atoi(m[2])
		if err != nil || procs < 1 {
			return nil, fmt.Errorf("benchmark %q: bad parallelism rung", name)
		}
		rec := bench[name]
		if rec.NsOp <= 0 {
			return nil, fmt.Errorf("benchmark %q: non-positive ns/op %v", name, rec.NsOp)
		}
		if _, seen := families[m[1]]; !seen {
			order = append(order, m[1])
		}
		families[m[1]] = append(families[m[1]], scalingRung{procs: procs, nsOp: rec.NsOp})
	}
	groups := make([]scalingGroup, 0, len(families))
	for _, name := range order {
		rungs := families[name]
		sort.Slice(rungs, func(i, j int) bool { return rungs[i].procs < rungs[j].procs })
		if rungs[0].procs != 1 {
			return nil, fmt.Errorf("family %q has no p=1 anchor; cannot compute speedups", name)
		}
		base := rungs[0].nsOp
		for i := range rungs {
			rungs[i].speedup = base / rungs[i].nsOp
		}
		groups = append(groups, scalingGroup{name: name, rungs: rungs})
	}
	return groups, nil
}

// scalingVerdict applies the gates: a speedup below 1.0 at any rung past
// the anchor means adding workers made the solve slower - a coordination
// regression, and a failure; a p=4 rung below warnAt is an efficiency
// warning.  Both slices come back in deterministic group/rung order.
func scalingVerdict(groups []scalingGroup, warnAt float64) (failures, warnings []string) {
	for _, g := range groups {
		for _, r := range g.rungs[1:] {
			if r.speedup < 1.0 {
				failures = append(failures,
					fmt.Sprintf("%s/p=%d: speedup %.2fx < 1.00x (parallel slower than sequential)",
						g.name, r.procs, r.speedup))
			} else if r.procs == 4 && r.speedup < warnAt {
				warnings = append(warnings,
					fmt.Sprintf("%s/p=4: speedup %.2fx below the %.2fx efficiency target",
						g.name, r.speedup, warnAt))
			}
		}
	}
	return failures, warnings
}

// doScaling loads one recorded baseline and gates its parallelism sweeps.
// The report is diffed across CI runs, so it must be byte-stable for
// identical inputs: groups and rungs are emitted in sorted order.
//
//rt:deterministic
func doScaling(path string, warnAt float64) (bool, error) {
	b, err := loadBaseline(path)
	if err != nil {
		return false, err
	}
	groups, err := scalingGroups(b.Benchmarks)
	if err != nil {
		return false, err
	}
	if len(groups) == 0 {
		return false, fmt.Errorf("%s: no name/p=N benchmark families to gate", path)
	}
	fmt.Printf("%-50s %6s %14s %10s\n", "FAMILY", "p", "ns/op", "SPEEDUP")
	for _, g := range groups {
		for _, r := range g.rungs {
			fmt.Printf("%-50s %6d %14.1f %9.2fx\n", g.name, r.procs, r.nsOp, r.speedup)
		}
	}
	fmt.Println()
	failures, warnings := scalingVerdict(groups, warnAt)
	for _, w := range warnings {
		fmt.Printf("WARN  %s\n", w)
	}
	for _, f := range failures {
		fmt.Printf("FAIL  %s\n", f)
	}
	if len(failures) > 0 {
		return false, nil
	}
	fmt.Printf("PASS: %d parallelism sweeps, no rung below 1.00x\n", len(groups))
	return true, nil
}

// Command rtbench regenerates the paper-facing experiment summary: the
// measured approximation ratios behind Table 1, the gadget truth tables
// (Tables 2 and 3), and the reducer curves of Figures 2 and 3.  Its
// output is the source of EXPERIMENTS.md.
//
// -parallel sizes the worker pool of the exact-optimum searches that
// anchor Table 1 and the hardness gaps (0 means GOMAXPROCS); the measured
// numbers are identical at every setting, only the wall time changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/racesim"
	"repro/internal/reduction"
	"repro/internal/scenario"
	"repro/internal/solver"
)

var parallel = flag.Int("parallel", 0, "exact-search workers (0: GOMAXPROCS, 1: sequential)")

func main() {
	log.SetFlags(0)
	flag.Parse()
	fig2()
	fig3()
	fig45()
	table1()
	table2()
	table3()
	gaps()
}

func fig2() {
	fmt.Println("## Figure 2 - binary reducer on n = 1024 updates (self-parent variant)")
	fmt.Println("| height | space | measured time | formula ceil(n/2^h)+h+1 |")
	fmt.Println("|---|---|---|---|")
	const n = 1024
	for h := 0; h <= 6; h++ {
		tr, err := racesim.WithBinaryReducer(racesim.SingleCell(n), 0, h, racesim.SelfParent)
		if err != nil {
			log.Fatal(err)
		}
		res, err := racesim.Simulate(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		leaves := int64(1) << uint(h)
		formula := (int64(n)+leaves-1)/leaves + int64(h) + 1
		if h == 0 {
			formula = n
		}
		fmt.Printf("| %d | %d | %d | %d |\n", h, tr.NumCells-1, res.FinishTime, formula)
	}
	fmt.Println()
}

func fig3() {
	fmt.Println("## Figure 3 - Parallel-MM (n = 32) with reducers on every Z cell")
	fmt.Println("| height | extra space | time | speedup |")
	fmt.Println("|---|---|---|---|")
	mm := racesim.ParallelMM(32)
	base, err := racesim.Simulate(mm.Trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	for h := 0; h <= 5; h++ {
		tr, extra, err := mm.WithReducersOnZ(h, racesim.SelfParent)
		if err != nil {
			log.Fatal(err)
		}
		res, err := racesim.Simulate(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("| %d | %d | %d | %.2f |\n",
			h, extra, res.FinishTime, float64(base.FinishTime)/float64(res.FinishTime))
	}
	fmt.Println()
}

func fig45() {
	fmt.Println("## Figures 4 and 5 - the running race-DAG example")
	vi := racesim.Figure4()
	m4, err := vi.Makespan(nil)
	if err != nil {
		log.Fatal(err)
	}
	v5, err := racesim.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	m5, err := v5.Makespan(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan without reducers: %d (paper: 11)\n", m4)
	fmt.Printf("makespan with height-1 supernode on c: %d (paper: 10)\n\n", m5)
}

func table1() {
	fmt.Println("## Table 1 - measured approximation ratios vs exact OPT (30 random instances each)")
	fmt.Println("| algorithm | proven bound | worst measured | mean measured |")
	fmt.Println("|---|---|---|---|")
	ctx := context.Background()
	rows := []struct {
		name, bound, kind, solver string
	}{
		{"bi-criteria alpha=1/2 (Thm 3.4)", "2 OPT (2B resources)", "step", "bicriteria"},
		{"k-way 5-approx (Thm 3.9)", "5 OPT", "kway", "kway5"},
		{"binary 4-approx (Thm 3.10)", "4 OPT", "binary", "binary4"},
		{"binary (4/3, 14/5) (Thm 3.16)", "14/5 OPT (4B/3 resources)", "binary", "binarybi"},
	}
	for _, row := range rows {
		g := scenario.NewGen(99)
		worst, sum, count := 0.0, 0.0, 0
		for count < 30 {
			var inst *core.Instance
			switch row.kind {
			case "step":
				inst = g.StepInstance(2, 2, 1, 3, 9, 3)
			case "kway":
				inst = g.KWayInstance(2, 2, 1, 30)
			case "binary":
				inst = g.BinaryInstance(2, 2, 1, 30)
			}
			budget := int64(count%5 + 1)
			opt, err := solver.Solve(ctx, "exact", inst,
				solver.WithBudget(budget), solver.WithParallelism(*parallel))
			if err != nil || !opt.Complete || opt.Sol.Makespan == 0 {
				continue
			}
			rep, err := solver.Solve(ctx, row.solver, inst,
				solver.WithBudget(budget), solver.WithAlpha(0.5))
			if err != nil {
				log.Fatal(err)
			}
			ratio := float64(rep.Sol.Makespan) / float64(opt.Sol.Makespan)
			if ratio > worst {
				worst = ratio
			}
			sum += ratio
			count++
		}
		fmt.Printf("| %s | %s | %.3f | %.3f |\n", row.name, row.bound, worst, sum/float64(count))
	}
	fmt.Println()
}

func table2() {
	fmt.Println("## Table 2 - Theorem 4.1 clause gadget event times at (C5, C6, C7)")
	fmt.Println("| Vi | Vj | Vk | C5 | C6 | C7 |")
	fmt.Println("|---|---|---|---|---|---|")
	f := reduction.Formula{NumVars: 3, Clauses: []reduction.Clause{
		{reduction.Pos(0), reduction.Pos(1), reduction.Pos(2)},
	}}
	r, err := reduction.BuildThm41(f)
	if err != nil {
		log.Fatal(err)
	}
	for mask := 7; mask >= 0; mask-- {
		assign := []bool{mask&4 != 0, mask&2 != 0, mask&1 != 0}
		row, err := r.Table2Row(0, assign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("| %v | %v | %v | %d | %d | %d |\n",
			assign[0], assign[1], assign[2], row[0], row[1], row[2])
	}
	fmt.Println()
}

func table3() {
	fmt.Println("## Table 3 - Section 4.2 pattern-vertex earliest finish times (a = 6x+4, b = 5x+6)")
	f := reduction.Formula{NumVars: 3, Clauses: []reduction.Clause{
		{reduction.Pos(0), reduction.Pos(1), reduction.Pos(2)},
	}}
	c, err := reduction.BuildSec42(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x = %d, a = %d, b = %d\n", c.X, 6*c.X+4, 5*c.X+6)
	fmt.Println("| Vi | Vj | Vk | C5 | C6 | C7 |")
	fmt.Println("|---|---|---|---|---|---|")
	for mask := 7; mask >= 0; mask-- {
		assign := []bool{mask&4 != 0, mask&2 != 0, mask&1 != 0}
		tr, err := c.RoutedTrace(assign, []int{0})
		if err != nil {
			log.Fatal(err)
		}
		res, err := racesim.Simulate(tr, 0)
		if err != nil {
			log.Fatal(err)
		}
		cg := c.Cls[0]
		fmt.Printf("| %v | %v | %v | %d | %d | %d |\n",
			assign[0], assign[1], assign[2],
			res.CellFinal[cg.C5], res.CellFinal[cg.C6], res.CellFinal[cg.C7])
	}
	fmt.Println()
}

func gaps() {
	fmt.Println("## Table 1 hardness column - machine-verified gaps")
	ctx := context.Background()
	sat, err := reduction.BuildThm41(reduction.Figure9Formula())
	if err != nil {
		log.Fatal(err)
	}
	sol, err := solver.Solve(ctx, "exact", sat.Inst,
		solver.WithBudget(sat.Budget), solver.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	unsat, err := reduction.BuildThm41(reduction.UnsatOneInThreeFormula())
	if err != nil {
		log.Fatal(err)
	}
	ok, _, _, err := exact.Feasible(unsat.Inst, unsat.Budget, 1,
		&exact.Options{Parallelism: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4.1/4.3: satisfiable OPT makespan = %d; unsatisfiable reaches 1: %v (factor-2 gap)\n", sol.Sol.Makespan, ok)

	gapSat, err := reduction.BuildResourceGap(reduction.Figure9Formula())
	if err != nil {
		log.Fatal(err)
	}
	rs, err := solver.Solve(ctx, "exact", gapSat.Inst,
		solver.WithTarget(gapSat.Target), solver.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	gapUnsat, err := reduction.BuildResourceGap(reduction.Formula{
		NumVars: 2,
		Clauses: []reduction.Clause{
			{reduction.Pos(0), reduction.Pos(0), reduction.Pos(1)},
			{reduction.Pos(0), reduction.Pos(0), reduction.Neg(1)},
			{reduction.Neg(0), reduction.Neg(0), reduction.Pos(1)},
			{reduction.Neg(0), reduction.Neg(0), reduction.Neg(1)},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ru, err := solver.Solve(ctx, "exact", gapUnsat.Inst,
		solver.WithTarget(gapUnsat.Target), solver.WithParallelism(*parallel))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 4.4: satisfiable min resource = %d; unsatisfiable = %d (factor-3/2 gap)\n", rs.Sol.Value, ru.Sol.Value)
}

// Command rtlint runs the repo's custom analyzer suite (see
// internal/analysis): detrange, compiledimmut, ctxpoll, hotalloc and
// cachekey statically enforce the determinism, immutability, anytime and
// zero-alloc invariants the runtime tests can only spot-check.
//
// Two modes:
//
//	rtlint [packages]                      standalone, loads packages via
//	                                       the go command (default ./...)
//	go vet -vettool=$(which rtlint) ./...  unitchecker protocol; also
//	                                       covers _test.go files
//
// Standalone mode accepts -json for machine-readable findings and one
// boolean flag per analyzer to narrow the suite (go vet forwards the same
// flags).  Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"os"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/rtlint"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], rtlint.Suite()))
}

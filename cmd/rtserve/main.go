// Command rtserve runs the resource-time tradeoff solving service: a
// long-running HTTP/JSON server over the unified solver registry, with a
// bounded worker pool, a compiled-instance cache so hot DAGs decode and
// compile once, and a canonical-hash result cache so repeated instances
// never recompute.
//
//	rtserve -addr :8080 -workers 8 -cache 4096 -compiled 512
//
// Cluster mode joins a static fleet that solves each distinct instance
// once cluster-wide (requests are routed to an owner node by rendezvous
// hashing over the canonical instance hash; an unreachable owner
// degrades to a local solve):
//
//	rtserve -addr :8080 -self http://node1:8080 \
//	  -peers http://node1:8080,http://node2:8080,http://node3:8080
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/solvers
//	curl -X POST localhost:8080/v1/solve \
//	  -d '{"solver":"auto","options":{"budget":6},"instance":'"$(rtgen -kind step)"'}'
//
// Batches go under {"batch": [...]}; duplicated instances inside a batch
// are solved once and served from the cache.  GET /v1/stats reports cache
// hit/miss/coalesce counters, pool utilization and job activity.
//
// Long solves go through the async job API instead: POST /v1/jobs returns
// 202 with a job id immediately, GET /v1/jobs/{id} polls, and GET
// /v1/jobs/{id}/events streams the live incumbent/bound/gap trajectory as
// Server-Sent Events.  GET or POST /v1/frontier sweeps a budget range and
// returns the resource-time tradeoff curve, each point warm-started from
// its neighbor.  See docs/API.md for the full reference.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solve workers (0: GOMAXPROCS)")
	cache := flag.Int("cache", 0, "result-cache entries (0: 1024 default, -1: disable)")
	compiled := flag.Int("compiled", 0, "compiled-instance cache entries; each entry retains a few times its instance's wire size (0: 512 default, -1: disable)")
	maxBody := flag.Int64("maxbody", 0, "request body cap in bytes (0: 8 MiB default)")
	storeDir := flag.String("store", "", "durable solve store directory (empty: in-memory only)")
	retainJobs := flag.Int("jobs", 0, "finished async jobs retained for polling (0: 256 default, -1: none)")
	self := flag.String("self", "", "this node's base URL in cluster mode (scheme://host:port)")
	peers := flag.String("peers", "", "comma-separated peer base URLs; with -self, enables cluster mode")
	flag.Parse()

	opts := []service.Option{
		service.WithWorkers(*workers),
		service.WithCacheEntries(*cache),
		service.WithCompiledEntries(*compiled),
		service.WithMaxBodyBytes(*maxBody),
		service.WithStore(*storeDir),
		service.WithRetainJobs(*retainJobs),
	}
	if *self != "" || *peers != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		opts = append(opts, service.WithPeers(*self, peerList...))
	}
	svc, err := service.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *self != "" {
		log.Printf("cluster mode: self %s, %d peers", *self, len(strings.Split(*peers, ",")))
	}
	if lr, ok := svc.StoreLoad(); ok {
		log.Printf("store %s: %d reports, %d instances loaded; %d corrupt, %d foreign-version skipped",
			*storeDir, lr.Reports, lr.Instances, lr.Corrupt, lr.Skipped)
		for _, e := range lr.Errors {
			log.Printf("store: skipped entry: %s", e)
		}
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	svc.Close()
}

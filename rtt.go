// Package rtt is a Go implementation of the discrete resource-time
// tradeoff problem with resource reuse over paths, reproducing
//
//	Das, Tsai, Duppala, Lynch, Arkin, Chowdhury, Mitchell, Skiena.
//	"Data Races and the Discrete Resource-time Tradeoff Problem with
//	Resource Reuse over Paths."  SPAA 2019.
//
// An instance is a single-source single-sink DAG whose arcs carry jobs
// with non-increasing duration functions; a solution routes integral
// resource units along source-to-sink paths (each unit serves every arc
// it traverses - "reuse over paths"), and the makespan is the longest
// path under the resulting durations.  The package exposes:
//
//   - the three duration-function classes of Section 2 (general step,
//     k-way splitting, recursive binary splitting);
//   - the Section 3 approximation algorithms (bi-criteria LP rounding,
//     the 5-approximation for k-way splitting, the 4-approximation and
//     the improved (4/3, 14/5) bi-criteria for recursive binary);
//   - the Section 3.4 exact pseudo-polynomial dynamic program for
//     series-parallel DAGs, with recognition;
//   - an exact branch-and-bound optimizer for small general instances;
//   - the race-DAG machinery of Section 1: traces, reducers, a
//     discrete-event simulator, and vertex-form instances;
//   - the Section 4 / Appendix A hardness constructions (via
//     internal/reduction, exercised by the benchmark harness).
package rtt

import (
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/racesim"
	"repro/internal/sp"
)

// Core model types.
type (
	// Instance is an activity-on-arc problem instance.
	Instance = core.Instance
	// VertexInstance is a jobs-on-vertices (race DAG) instance.
	VertexInstance = core.VertexInstance
	// Solution is a validated flow with its value and makespan.
	Solution = core.Solution
	// DurationFunc maps resources to job duration (non-increasing).
	DurationFunc = duration.Func
	// Tuple is a resource-time breakpoint.
	Tuple = duration.Tuple
	// ApproxResult is the outcome of an approximation algorithm.
	ApproxResult = approx.Result
	// ExactOptions tunes the exact branch-and-bound search.
	ExactOptions = exact.Options
	// ExactStats reports exact-search effort and completeness.
	ExactStats = exact.Stats
	// SPTree is a series-parallel decomposition tree.
	SPTree = sp.Tree
	// SPTables holds solved series-parallel DP tables.
	SPTables = sp.Tables
	// Trace is a program's update trace for the race simulator.
	Trace = racesim.Trace
	// Update is one atomic update in a trace.
	Update = racesim.Update
	// SimResult is a simulated execution outcome.
	SimResult = racesim.SimResult
)

// Reducer kinds for race instances.
const (
	NoReducer     = core.NoReducer
	BinaryReducer = core.BinaryReducer
	KWayReducer   = core.KWayReducer
)

// Duration-function constructors.
var (
	// NewStep builds a general non-increasing step function (Equation 1).
	NewStep = duration.NewStep
	// NewKWay builds the k-way splitting function (Equation 2).
	NewKWay = duration.NewKWay
	// NewRecursiveBinary builds the recursive binary splitting function
	// (Equation 3).
	NewRecursiveBinary = duration.NewRecursiveBinary
)

// Constant returns a duration function that ignores resources.
func Constant(t int64) DurationFunc { return duration.Constant(t) }

// NewInstance validates and builds an activity-on-arc instance; see
// dag.Graph for graph construction (re-exported via NewGraph).
var NewInstance = core.NewInstance

// NewVertexInstance builds a jobs-on-vertices instance.
var NewVertexInstance = core.NewVertexInstance

// NewRaceInstance derives the space-time tradeoff instance of Question
// 1.3 from a race DAG, with the chosen reducer class at every vertex.
var NewRaceInstance = core.NewRaceInstance

// Approximation algorithms (Section 3).
var (
	// BiCriteria is the (1/alpha, 1/(1-alpha)) algorithm of Theorem 3.4.
	BiCriteria = approx.BiCriteria
	// BiCriteriaResource is its minimum-resource twin.
	BiCriteriaResource = approx.BiCriteriaResource
	// KWay5 is the 5-approximation of Theorem 3.9.
	KWay5 = approx.KWay5
	// Binary4 is the 4-approximation of Theorem 3.10.
	Binary4 = approx.Binary4
	// BinaryBiCriteria is the (4/3, 14/5) algorithm of Theorem 3.16.
	BinaryBiCriteria = approx.BinaryBiCriteria
)

// Exact optimization (branch and bound; exponential worst case).
var (
	// ExactMinMakespan minimizes makespan under a resource budget.
	ExactMinMakespan = exact.MinMakespan
	// ExactMinResource minimizes resources under a makespan target.
	ExactMinResource = exact.MinResource
	// ExactFeasible decides the (budget, target) decision problem.
	ExactFeasible = exact.Feasible
)

// Series-parallel machinery (Section 3.4).
var (
	// SPLeaf, SPSeries and SPParallel build decomposition trees.
	SPLeaf     = sp.Leaf
	SPSeries   = sp.Series
	SPParallel = sp.Parallel
	// SPSolve runs the O(m B^2) dynamic program.
	SPSolve = sp.Solve
	// SPRecognize extracts a decomposition tree from an instance when its
	// DAG is two-terminal series-parallel.
	SPRecognize = sp.Recognize
)

// Race simulation (Section 1).
var (
	// Simulate runs a trace on the unit-cost update machine.
	Simulate = racesim.Simulate
	// ParallelMM builds the Figure 3 matrix-multiply trace.
	ParallelMM = racesim.ParallelMM
	// SingleCell builds n updates to one shared cell (Figure 2).
	SingleCell = racesim.SingleCell
	// WithBinaryReducer and WithKWaySplit attach reducers to a cell.
	WithBinaryReducer = racesim.WithBinaryReducer
	WithKWaySplit     = racesim.WithKWaySplit
	// SupernodeBinary applies the Figure 5 supernode transformation.
	SupernodeBinary = racesim.SupernodeBinary
	// RaceOutcomes enumerates the Figure 1 interleavings.
	RaceOutcomes = racesim.RaceOutcomes
	// Figure4 and Figure5 rebuild the paper's running example.
	Figure4 = racesim.Figure4
	Figure5 = racesim.Figure5
)

// Binary reducer variants.
const (
	SelfParent = racesim.SelfParent
	FullTree   = racesim.FullTree
)

// Package rtt is a Go implementation of the discrete resource-time
// tradeoff problem with resource reuse over paths, reproducing
//
//	Das, Tsai, Duppala, Lynch, Arkin, Chowdhury, Mitchell, Skiena.
//	"Data Races and the Discrete Resource-time Tradeoff Problem with
//	Resource Reuse over Paths."  SPAA 2019.
//
// An instance is a single-source single-sink DAG whose arcs carry jobs
// with non-increasing duration functions; a solution routes integral
// resource units along source-to-sink paths (each unit serves every arc
// it traverses - "reuse over paths"), and the makespan is the longest
// path under the resulting durations.
//
// # The Solver API
//
// All algorithms sit behind one registry of named solvers.  The usual
// entry point is Solve:
//
//	rep, err := rtt.Solve(ctx, "auto", inst, rtt.WithBudget(8))
//
// which dispatches by name ("exact", "bicriteria", "bicriteria-resource",
// "kway5", "binary4", "binarybi", "spdp", or the portfolio "auto" that
// inspects the instance and routes to the solver whose guarantee
// applies), runs it under ctx - the exact search and the LP relaxations
// poll the context, so WithDeadline bounds the solve - and returns a
// structured Report (solution, lower bound, guarantee, node count, wall
// time, and auto's routing decision).  GetSolver and Solvers expose the
// registry directly; RegisterSolver accepts custom implementations.
//
// The paper's content behind the solvers:
//
//   - the three duration-function classes of Section 2 (general step,
//     k-way splitting, recursive binary splitting), with structural
//     class detection (ClassifyDurations);
//   - the Section 3 approximation algorithms (bi-criteria LP rounding,
//     the 5-approximation for k-way splitting, the 4-approximation and
//     the improved (4/3, 14/5) bi-criteria for recursive binary);
//   - the Section 3.4 exact pseudo-polynomial dynamic program for
//     series-parallel DAGs, with recognition;
//   - an exact branch-and-bound optimizer for small general instances;
//   - the race-DAG machinery of Section 1: traces, reducers, a
//     discrete-event simulator, and vertex-form instances;
//   - the Section 4 / Appendix A hardness constructions (via
//     internal/reduction, exercised by the benchmark harness).
package rtt

import (
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/duration"
	"repro/internal/exact"
	"repro/internal/racesim"
	"repro/internal/solver"
	"repro/internal/sp"
)

// Unified solver API types.
type (
	// Solver is one algorithm behind the unified solve API.
	Solver = solver.Solver
	// SolverCaps declares a solver's supported modes and classes.
	SolverCaps = solver.Caps
	// SolveOptions is the resolved option set of one solve call.
	SolveOptions = solver.Options
	// SolveOption is a functional option for Solve.
	SolveOption = solver.Option
	// Report is the structured outcome of one solve.
	Report = solver.Report
	// Objective distinguishes min-makespan from min-resource mode.
	Objective = solver.Objective
)

// Optimization directions.
const (
	// MinMakespan minimizes makespan under a resource budget.
	MinMakespan = solver.MinMakespan
	// MinResource minimizes resource usage under a makespan target.
	MinResource = solver.MinResource
)

// Compiled is the immutable preprocessed form of an Instance: CSR
// adjacency, topological order, canonical hash, breakpoint tables, convex
// envelopes, combinatorial bounds, and lazily derived expansion and
// recognition results, shared by every solver.  Compile once, solve many.
type Compiled = core.Compiled

// Compile derives the compiled form of a validated instance.
var Compile = core.Compile

// Solver registry and dispatch.
var (
	// Solve resolves a solver by name, validates options against its
	// capabilities and runs it under the context.  It compiles the
	// instance first; callers solving the same instance repeatedly should
	// Compile once and use SolveCompiled.
	Solve = solver.Solve
	// SolveCompiled is Solve on an already-compiled instance.
	SolveCompiled = solver.SolveCompiled
	// RegisterSolver adds a custom solver to the registry.
	RegisterSolver = solver.Register
	// GetSolver resolves a registered solver by name.
	GetSolver = solver.Get
	// Solvers lists all registered solvers sorted by name.
	Solvers = solver.List
	// SolverNames lists the registered solver names.
	SolverNames = solver.Names
	// NewSolveOptions resolves functional options onto the defaults; use
	// it when calling a Solver's Solve method directly (the zero-value
	// SolveOptions is not valid).
	NewSolveOptions = solver.NewOptions
	// ErrNotSeriesParallel is returned by the spdp solver on general DAGs.
	ErrNotSeriesParallel = solver.ErrNotSeriesParallel
)

// Functional options for Solve.
var (
	// WithBudget selects min-makespan mode under a resource budget.
	WithBudget = solver.WithBudget
	// WithTarget selects min-resource mode under a makespan target.
	WithTarget = solver.WithTarget
	// WithAlpha sets the bi-criteria rounding parameter (default 0.5).
	WithAlpha = solver.WithAlpha
	// WithMaxNodes caps the exact branch-and-bound search.
	WithMaxNodes = solver.WithMaxNodes
	// WithParallelism sizes the exact search's worker pool (0: GOMAXPROCS,
	// 1: sequential) and arms auto's exact-vs-rounding racing.
	WithParallelism = solver.WithParallelism
	// WithDeadline bounds the solve's wall time via a context deadline.
	WithDeadline = solver.WithDeadline
)

// ClassifyDurations detects the duration class covering every function
// ("binary", "kway" or "step"); the auto solver uses it for dispatch.
var ClassifyDurations = duration.Classify

// Core model types.
type (
	// Instance is an activity-on-arc problem instance.
	Instance = core.Instance
	// VertexInstance is a jobs-on-vertices (race DAG) instance.
	VertexInstance = core.VertexInstance
	// Solution is a validated flow with its value and makespan.
	Solution = core.Solution
	// DurationFunc maps resources to job duration (non-increasing).
	DurationFunc = duration.Func
	// Tuple is a resource-time breakpoint.
	Tuple = duration.Tuple
	// ApproxResult is the outcome of an approximation algorithm.
	ApproxResult = approx.Result
	// ExactOptions tunes the exact branch-and-bound search.
	ExactOptions = exact.Options
	// ExactStats reports exact-search effort and completeness.
	ExactStats = exact.Stats
	// SPTree is a series-parallel decomposition tree.
	SPTree = sp.Tree
	// SPTables holds solved series-parallel DP tables.
	SPTables = sp.Tables
	// Trace is a program's update trace for the race simulator.
	Trace = racesim.Trace
	// Update is one atomic update in a trace.
	Update = racesim.Update
	// SimResult is a simulated execution outcome.
	SimResult = racesim.SimResult
)

// Reducer kinds for race instances.
const (
	NoReducer     = core.NoReducer
	BinaryReducer = core.BinaryReducer
	KWayReducer   = core.KWayReducer
)

// Duration-function constructors.
var (
	// NewStep builds a general non-increasing step function (Equation 1).
	NewStep = duration.NewStep
	// NewKWay builds the k-way splitting function (Equation 2).
	NewKWay = duration.NewKWay
	// NewRecursiveBinary builds the recursive binary splitting function
	// (Equation 3).
	NewRecursiveBinary = duration.NewRecursiveBinary
)

// Constant returns a duration function that ignores resources.
func Constant(t int64) DurationFunc { return duration.Constant(t) }

// NewInstance validates and builds an activity-on-arc instance; see
// dag.Graph for graph construction (re-exported via NewGraph).
var NewInstance = core.NewInstance

// NewVertexInstance builds a jobs-on-vertices instance.
var NewVertexInstance = core.NewVertexInstance

// NewRaceInstance derives the space-time tradeoff instance of Question
// 1.3 from a race DAG, with the chosen reducer class at every vertex.
var NewRaceInstance = core.NewRaceInstance

// The PR 1 deprecated aliases for the raw approximation and exact entry
// points (BiCriteria, KWay5, Binary4, BinaryBiCriteria, ExactMinMakespan,
// ExactMinResource, ...) are gone: dispatch through Solve with the solver
// names "bicriteria", "bicriteria-resource", "kway5", "binary4",
// "binarybi" and "exact" instead — the registry validates capabilities,
// honors the context, and returns a structured Report.

// ExactFeasible decides the (budget, target) decision problem; it has no
// registry twin because the registry solves optimization modes only.
var ExactFeasible = exact.Feasible

// Series-parallel machinery (Section 3.4).
var (
	// SPLeaf, SPSeries and SPParallel build decomposition trees.
	SPLeaf     = sp.Leaf
	SPSeries   = sp.Series
	SPParallel = sp.Parallel
	// SPSolve runs the O(m B^2) dynamic program; SPSolveCtx is its
	// cancellable variant.
	SPSolve    = sp.Solve
	SPSolveCtx = sp.SolveCtx
	// SPRecognize extracts a decomposition tree from an instance when its
	// DAG is two-terminal series-parallel.
	SPRecognize = sp.Recognize
	// SPRecognizeMap additionally returns the leaf-to-arc map used to
	// materialize DP solutions as flows on the original instance.
	SPRecognizeMap = sp.RecognizeMap
)

// Race simulation (Section 1).
var (
	// Simulate runs a trace on the unit-cost update machine.
	Simulate = racesim.Simulate
	// ParallelMM builds the Figure 3 matrix-multiply trace.
	ParallelMM = racesim.ParallelMM
	// SingleCell builds n updates to one shared cell (Figure 2).
	SingleCell = racesim.SingleCell
	// WithBinaryReducer and WithKWaySplit attach reducers to a cell.
	WithBinaryReducer = racesim.WithBinaryReducer
	WithKWaySplit     = racesim.WithKWaySplit
	// SupernodeBinary applies the Figure 5 supernode transformation.
	SupernodeBinary = racesim.SupernodeBinary
	// RaceOutcomes enumerates the Figure 1 interleavings.
	RaceOutcomes = racesim.RaceOutcomes
	// Figure4 and Figure5 rebuild the paper's running example.
	Figure4 = racesim.Figure4
	Figure5 = racesim.Figure5
)

// Binary reducer variants.
const (
	SelfParent = racesim.SelfParent
	FullTree   = racesim.FullTree
)

// Benchmarks regenerating every table and figure of the paper's
// evaluation-bearing content.  Each benchmark is named after the artifact
// it reproduces; ratio metrics are reported via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints both the performance of the implementation and the measured
// approximation quality next to the bounds the paper proves.  See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package rtt

import (
	"fmt"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/racesim"
	"repro/internal/reduction"
	"repro/internal/scenario"
	"repro/internal/sp"
)

// BenchmarkFig1RaceOutcomes enumerates the Figure 1 interleavings.
func BenchmarkFig1RaceOutcomes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := racesim.RaceOutcomes(false); len(out) != 2 {
			b.Fatal("unexpected race outcomes")
		}
	}
}

// BenchmarkFig2Reducer simulates n = 1024 updates through self-parent
// binary reducers of increasing height; the reported metric time_units is
// the simulated completion time ceil(n/2^h) + h + 1.
func BenchmarkFig2Reducer(b *testing.B) {
	const n = 1024
	for h := 0; h <= 6; h++ {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			tr, err := racesim.WithBinaryReducer(racesim.SingleCell(n), 0, h, racesim.SelfParent)
			if err != nil {
				b.Fatal(err)
			}
			var finish int64
			for i := 0; i < b.N; i++ {
				res, err := racesim.Simulate(tr, 0)
				if err != nil {
					b.Fatal(err)
				}
				finish = res.FinishTime
			}
			b.ReportMetric(float64(finish), "time_units")
		})
	}
}

// BenchmarkFig3ParallelMM reproduces the Figure 3 tradeoff for a 32x32
// multiply: extra space n^2 2^h buys completion time ceil(n/2^h) + h + 1.
func BenchmarkFig3ParallelMM(b *testing.B) {
	const n = 32
	mm := racesim.ParallelMM(n)
	for h := 0; h <= 4; h++ {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			tr, extra, err := mm.WithReducersOnZ(h, racesim.SelfParent)
			if err != nil {
				b.Fatal(err)
			}
			var finish int64
			for i := 0; i < b.N; i++ {
				res, err := racesim.Simulate(tr, 0)
				if err != nil {
					b.Fatal(err)
				}
				finish = res.FinishTime
			}
			b.ReportMetric(float64(finish), "time_units")
			b.ReportMetric(float64(extra), "extra_space")
		})
	}
}

// BenchmarkFig4Fig5 rebuilds the running example: makespan 11, dropping
// to 10 with the height-1 supernode.
func BenchmarkFig4Fig5(b *testing.B) {
	var m4, m5 int64
	for i := 0; i < b.N; i++ {
		vi := racesim.Figure4()
		var err error
		m4, err = vi.Makespan(nil)
		if err != nil {
			b.Fatal(err)
		}
		v5, err := racesim.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		m5, err = v5.Makespan(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m4), "fig4_makespan")
	b.ReportMetric(float64(m5), "fig5_makespan")
}

// BenchmarkFig6Expansion measures the D -> D” two-tuple expansion on a
// random step instance (Figures 6 and 7).
func BenchmarkFig6Expansion(b *testing.B) {
	inst := scenario.NewGen(17).StepInstance(6, 5, 4, 4, 40, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Expand(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// table1Ratio runs an approximation algorithm against the exact optimum
// over a family of small random instances and reports the worst and mean
// makespan ratios (Table 1's approximation column, measured).
func table1Ratio(b *testing.B, kind string, run func(*core.Instance, int64) (*approx.Result, error)) {
	g := scenario.NewGen(99)
	type testCase struct {
		inst   *core.Instance
		budget int64
		opt    int64
	}
	var cases []testCase
	for len(cases) < 12 {
		var inst *core.Instance
		switch kind {
		case "step":
			inst = g.StepInstance(2, 2, 1, 3, 9, 3)
		case "kway":
			inst = g.KWayInstance(2, 2, 1, 30)
		case "binary":
			inst = g.BinaryInstance(2, 2, 1, 30)
		}
		budget := int64(len(cases)%5 + 1)
		sol, stats, err := exact.MinMakespan(inst, budget, nil)
		if err != nil || !stats.Complete || sol.Makespan == 0 {
			continue
		}
		cases = append(cases, testCase{inst, budget, sol.Makespan})
	}
	b.ResetTimer()
	worst, sum := 0.0, 0.0
	for i := 0; i < b.N; i++ {
		worst, sum = 0, 0
		for _, tc := range cases {
			res, err := run(tc.inst, tc.budget)
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(res.Sol.Makespan) / float64(tc.opt)
			if ratio > worst {
				worst = ratio
			}
			sum += ratio
		}
	}
	b.ReportMetric(worst, "worst_ratio")
	b.ReportMetric(sum/float64(len(cases)), "mean_ratio")
}

// BenchmarkTable1BiCriteria measures the Theorem 3.4 algorithm at
// alpha = 1/2 (proven makespan factor 1/alpha = 2, resources 2B).
func BenchmarkTable1BiCriteria(b *testing.B) {
	table1Ratio(b, "step", func(inst *core.Instance, budget int64) (*approx.Result, error) {
		return approx.BiCriteria(inst, budget, 0.5)
	})
}

// BenchmarkTable1KWay5 measures the Theorem 3.9 5-approximation.
func BenchmarkTable1KWay5(b *testing.B) {
	table1Ratio(b, "kway", approx.KWay5)
}

// BenchmarkTable1Binary4 measures the Theorem 3.10 4-approximation.
func BenchmarkTable1Binary4(b *testing.B) {
	table1Ratio(b, "binary", approx.Binary4)
}

// BenchmarkTable1BinaryBiCriteria measures the Theorem 3.16 (4/3, 14/5)
// algorithm.
func BenchmarkTable1BinaryBiCriteria(b *testing.B) {
	table1Ratio(b, "binary", approx.BinaryBiCriteria)
}

// BenchmarkTable1HardnessGaps regenerates the hardness side of Table 1:
// the satisfiable Theorem 4.1 instance reaches makespan 1 while the
// unsatisfiable one cannot (factor-2 gap), and the Theorem 4.4 chain
// needs 2 vs 3 units (factor-3/2 gap).
func BenchmarkTable1HardnessGaps(b *testing.B) {
	sat, err := reduction.BuildThm41(reduction.Figure9Formula())
	if err != nil {
		b.Fatal(err)
	}
	gapSat, err := reduction.BuildResourceGap(reduction.Figure9Formula())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mk, res int64
	for i := 0; i < b.N; i++ {
		sol, _, err := exact.MinMakespan(sat.Inst, sat.Budget, nil)
		if err != nil {
			b.Fatal(err)
		}
		mk = sol.Makespan
		rsol, _, err := exact.MinResource(gapSat.Inst, gapSat.Target, nil)
		if err != nil {
			b.Fatal(err)
		}
		res = rsol.Value
	}
	b.ReportMetric(float64(mk), "sat_makespan")
	b.ReportMetric(float64(res), "sat_min_resource")
}

// BenchmarkTable2 regenerates the Table 2 clause-gadget rows.
func BenchmarkTable2(b *testing.B) {
	f := reduction.Formula{NumVars: 3, Clauses: []reduction.Clause{
		{reduction.Pos(0), reduction.Pos(1), reduction.Pos(2)},
	}}
	r, err := reduction.BuildThm41(f)
	if err != nil {
		b.Fatal(err)
	}
	assign := []bool{false, false, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2Row(0, assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates one Table 3 row (Section 4.2 gadgets under
// the exact machine semantics).
func BenchmarkTable3(b *testing.B) {
	f := reduction.Formula{NumVars: 3, Clauses: []reduction.Clause{
		{reduction.Pos(0), reduction.Pos(1), reduction.Pos(2)},
	}}
	c, err := reduction.BuildSec42(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := c.RoutedTrace([]bool{true, false, false}, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := racesim.Simulate(tr, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec34SPDP exercises the O(m B^2) series-parallel dynamic
// program across budget scales; time should grow quadratically with B.
func BenchmarkSec34SPDP(b *testing.B) {
	tree := scenario.NewGen(5).SPTree(64, 4, 50, 5)
	for _, budget := range []int64{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("B=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sp.Solve(tree, budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15Partition builds and exactly solves the Section 4.3
// bounded-treewidth instance; the metric is the optimal makespan, which
// equals the best balanced partition value.
func BenchmarkFig15Partition(b *testing.B) {
	items := []int64{3, 1, 4, 2}
	p, err := reduction.BuildPartition(items)
	if err != nil {
		b.Fatal(err)
	}
	var m int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, _, err := exact.MinMakespan(p.Inst, p.Budget, nil)
		if err != nil {
			b.Fatal(err)
		}
		m = sol.Makespan
	}
	b.ReportMetric(float64(m), "opt_makespan")
	b.ReportMetric(float64(reduction.BestBalance(items)), "best_balance")
}

// BenchmarkFig16TreeDecomposition validates the width-12 decomposition of
// a 64-item Partition instance.
func BenchmarkFig16TreeDecomposition(b *testing.B) {
	items := make([]int64, 64)
	for i := range items {
		items[i] = int64(i + 1)
	}
	p, err := reduction.BuildPartition(items)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td := p.Decomposition()
		if err := td.Validate(p.Inst.G); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17N3DM builds the Appendix A reduction and checks its
// witness flow.
func BenchmarkFig17N3DM(b *testing.B) {
	p := reduction.N3DM{A: []int64{1, 2, 3}, B: []int64{3, 2, 1}, C: []int64{2, 2, 2}}
	sigma, rho, ok := p.Solve()
	if !ok {
		b.Fatal("expected solvable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := reduction.BuildN3DM(p)
		if err != nil {
			b.Fatal(err)
		}
		flow, err := r.WitnessFlow(sigma, rho)
		if err != nil {
			b.Fatal(err)
		}
		m, err := r.Inst.Makespan(flow)
		if err != nil {
			b.Fatal(err)
		}
		if m != r.Target {
			b.Fatalf("witness makespan %d != target %d", m, r.Target)
		}
	}
}

// BenchmarkAblationMinFlowVsSaturate contrasts the Section 3.1 min-flow
// re-routing with the naive alternative that saturates every requirement
// on its own path: the metric is the resource saved by reuse.
func BenchmarkAblationMinFlowVsSaturate(b *testing.B) {
	inst := scenario.NewGen(23).StepInstance(4, 3, 2, 2, 20, 4)
	var reuse, naive int64
	for i := 0; i < b.N; i++ {
		res, err := approx.BiCriteria(inst, 10, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		reuse = res.Sol.Value
		naive = 0
		for e := 0; e < inst.G.NumEdges(); e++ {
			naive += res.Sol.Flow[e] // without reuse every arc pays separately
		}
	}
	b.ReportMetric(float64(reuse), "with_reuse")
	b.ReportMetric(float64(naive), "without_reuse")
}

// BenchmarkExactSolver measures the branch-and-bound on a mid-size
// instance, reporting search nodes.
func BenchmarkExactSolver(b *testing.B) {
	inst := scenario.NewGen(31).StepInstance(3, 2, 1, 3, 9, 3)
	var nodes int
	for i := 0; i < b.N; i++ {
		_, stats, err := exact.MinMakespan(inst, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		nodes = stats.Nodes
	}
	b.ReportMetric(float64(nodes), "search_nodes")
}

// BenchmarkExactParallel measures branch-and-bound scaling across worker
// counts on a complete ~10k-node search (a layered k-way instance).  The
// optimum must be identical at every parallelism - the shared-incumbent
// design guarantees value determinism - so the subbenchmarks cross-check
// it while timing.  Expect near-linear speedup up to the physical core
// count and a plateau beyond it; on a single-core machine all settings
// time alike.
func BenchmarkExactParallel(b *testing.B) {
	inst := scenario.NewGen(13).KWayInstance(3, 4, 2, 80)
	const budget = 10
	want, stats, err := exact.MinMakespan(inst, budget, &exact.Options{Parallelism: 1})
	if err != nil || !stats.Complete {
		b.Fatalf("sequential reference failed: %v (complete=%v)", err, stats.Complete)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", par), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				sol, stats, err := exact.MinMakespan(inst, budget, &exact.Options{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if !stats.Complete {
					b.Fatal("search incomplete")
				}
				if sol.Makespan != want.Makespan {
					b.Fatalf("parallelism %d: makespan %d != sequential %d", par, sol.Makespan, want.Makespan)
				}
				nodes = stats.Nodes
			}
			b.ReportMetric(float64(nodes), "search_nodes")
		})
	}
}

package rtt

import (
	"context"
	"strings"
	"testing"
)

// TestSolverFacade exercises the unified Solve API through the root
// package: registry lookup, functional options, auto routing and the
// structured Report.
func TestSolverFacade(t *testing.T) {
	if len(SolverNames()) < 8 {
		t.Fatalf("SolverNames() = %v; want the 8 built-ins", SolverNames())
	}

	g := NewGraph()
	s := g.AddNode("s")
	mid := g.AddNode("m")
	snk := g.AddNode("t")
	g.AddEdge(s, mid)
	g.AddEdge(mid, snk)
	inst, err := NewInstance(g, []DurationFunc{NewKWay(36), NewKWay(25)})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	rep, err := Solve(ctx, "auto", inst, WithBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	// A two-arc chain is series-parallel, so auto must take the exact DP.
	if rep.Solver != "spdp" || !strings.Contains(rep.Routing, "auto -> spdp") {
		t.Fatalf("Solver = %q, Routing = %q; want spdp via auto", rep.Solver, rep.Routing)
	}
	ex, err := Solve(ctx, "exact", inst, WithBudget(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sol.Makespan != ex.Sol.Makespan {
		t.Fatalf("auto makespan %d != exact %d", rep.Sol.Makespan, ex.Sol.Makespan)
	}
	if rep.Wall <= 0 || !rep.Complete || !rep.Exact {
		t.Fatalf("Report %+v: want complete exact run with wall time", rep)
	}

	// Capability mismatch surfaces as an error, not a fallthrough.
	if _, err := Solve(ctx, "kway5", inst, WithTarget(10)); err == nil {
		t.Fatal("kway5 with a makespan target must be rejected")
	}

	if ClassifyDurations(inst.Fns) != "kway" {
		t.Fatalf("ClassifyDurations = %q; want kway", ClassifyDurations(inst.Fns))
	}
}

package rtt

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/relax"
	"repro/internal/scenario"
	"repro/internal/solver"
)

// BenchmarkScaleFrankWolfe solves a ~1.3k-arc general layered DAG through
// the registry's scale tier; the reported metrics expose solution quality
// next to the speed (ratio = makespan / certified bound).
func BenchmarkScaleFrankWolfe(b *testing.B) {
	budget := int64(40)
	spec := scenario.Spec{Name: "bench", Family: "layered", Seed: 42,
		Params: scenario.Params{"layers": 24, "width": 18, "extra": 12, "tuples": 4, "maxt0": 40, "maxr": 5},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep *solver.Report
	for i := 0; i < b.N; i++ {
		rep, err = solver.Solve(context.Background(), "frankwolfe", inst, solver.WithBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Sol.Makespan), "makespan")
	b.ReportMetric(rep.ApproxRatioUpperBound, "ratio_bound")
}

// BenchmarkScaleFrankWolfe50k is the raw-speed tier's headline number: a
// 50k+-arc layered DAG solved through the scale tier in well under a
// second per solve.  Parallelism 0 sizes the sweep gang to GOMAXPROCS,
// so on multi-core runners this exercises the level-parallel sweep
// (which produces bit-identical results to the sequential one, so the
// reported quality metrics are stable across machines).  The instance is
// compiled once outside the timer - the compile-once-solve-many serving
// pattern - leaving the per-op cost the Frank-Wolfe solve itself.
func BenchmarkScaleFrankWolfe50k(b *testing.B) {
	budget := int64(500)
	spec := scenario.Spec{Name: "bench", Family: "layered", Seed: 1,
		Params: scenario.Params{"layers": 250, "width": 100, "extra": 100, "tuples": 3, "maxt0": 30, "maxr": 4},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	if arcs := inst.G.NumEdges(); arcs < 50000 {
		b.Fatalf("instance has %d arcs; the headline benchmark wants >= 50k", arcs)
	}
	c := core.Compile(inst)
	c.Levels()
	b.ReportAllocs()
	b.ResetTimer()
	var rep *solver.Report
	for i := 0; i < b.N; i++ {
		rep, err = solver.SolveCompiled(context.Background(), "frankwolfe", c,
			solver.WithBudget(budget), solver.WithParallelism(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(inst.G.NumEdges()), "arcs")
	b.ReportMetric(rep.ApproxRatioUpperBound, "ratio_bound")
}

// BenchmarkRelaxSolverReuse measures steady-state relaxation solves
// through one reused relax.Solver (the per-worker pattern): the scratch
// buffers make repeat solves allocation-light, which the allocs/op gate
// in CI watches.
func BenchmarkRelaxSolverReuse(b *testing.B) {
	budget := int64(12)
	spec := scenario.Spec{Name: "bench", Family: "diamondmesh", Seed: 7,
		Params: scenario.Params{"rows": 8, "cols": 8, "tuples": 3, "maxt0": 20, "maxr": 3},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	s := relax.NewSolver(inst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MinMakespan(context.Background(), budget, relax.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioBuild materializes every family at default parameters:
// the fixed cost each corpus verification and property-test draw pays.
func BenchmarkScenarioBuild(b *testing.B) {
	for _, f := range scenario.Families() {
		b.Run(f.Name, func(b *testing.B) {
			budget := int64(5)
			spec := scenario.Spec{Name: "bench", Family: f.Name, Seed: 11, Budget: &budget}
			b.ReportAllocs()
			var arcs int
			for i := 0; i < b.N; i++ {
				inst, err := spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				arcs = inst.G.NumEdges()
			}
			b.ReportMetric(float64(arcs), "arcs")
		})
	}
}

// BenchmarkAutoRouteLarge exercises auto's size-based routing end to end
// on a DAG past the dense-LP cap: route decision plus frankwolfe solve.
func BenchmarkAutoRouteLarge(b *testing.B) {
	budget := int64(30)
	spec := scenario.Spec{Name: "bench", Family: "racetrace", Seed: 13,
		Params: scenario.Params{"cells": 150, "updates": 600, "maxsrcs": 3, "reducer": 1},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := solver.Solve(context.Background(), "auto", inst, solver.WithBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && rep.Solver != "frankwolfe" {
			b.Fatalf("auto routed %d-arc instance to %s (%s); want frankwolfe", inst.G.NumEdges(), rep.Solver, rep.Routing)
		}
	}
}

// BenchmarkCompileOnceSolveMany contrasts the two ways to solve the same
// instance repeatedly: "fresh" compiles (and re-derives the recognition,
// class and envelope state) on every solve, "memoized" compiles once and
// reuses the lazily derived results.  The instance is series-parallel, so
// the auto route pays recognition - the costliest memoizable derivation -
// on every fresh solve and exactly once on the memoized path.
func BenchmarkCompileOnceSolveMany(b *testing.B) {
	budget := int64(6)
	spec := scenario.Spec{Name: "bench", Family: "randomsp", Seed: 21,
		Params: scenario.Params{"leaves": 192, "tuples": 4, "maxt0": 30, "maxr": 4},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, rep *solver.Report, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Solver != "spdp" {
			b.Fatalf("routed to %s; want spdp on a series-parallel instance", rep.Solver)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := solver.Solve(context.Background(), "auto", inst, solver.WithBudget(budget))
			check(b, rep, err)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		c := core.Compile(inst)
		rep, err := solver.SolveCompiled(context.Background(), "auto", c, solver.WithBudget(budget))
		check(b, rep, err)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := solver.SolveCompiled(context.Background(), "auto", c, solver.WithBudget(budget))
			check(b, rep, err)
		}
	})
}

// BenchmarkCanonicalHash measures the cache-identity hash on a mid-size
// instance with the reusable encoding buffer.
func BenchmarkCanonicalHash(b *testing.B) {
	budget := int64(5)
	spec := scenario.Spec{Name: "bench", Family: "layered", Seed: 3,
		Params: scenario.Params{"layers": 12, "width": 10, "extra": 6, "tuples": 4, "maxt0": 30, "maxr": 4},
		Budget: &budget}
	inst, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("arcs=%d", inst.G.NumEdges()), func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = inst.AppendCanonical(buf[:0])
		}
		_ = buf
	})
}

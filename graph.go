package rtt

import (
	"repro/internal/dag"
	"repro/internal/gen"
)

// Graph re-exports the DAG builder so callers can construct instances.
type Graph = dag.Graph

// NewGraph returns an empty directed multigraph.
func NewGraph() *Graph { return dag.New() }

// Generator re-exports the seeded workload generator.
type Generator = gen.Gen

// NewGenerator returns a deterministic workload generator.
func NewGenerator(seed int64) *Generator { return gen.New(seed) }

package rtt

import (
	"repro/internal/dag"
)

// Graph re-exports the DAG builder so callers can construct instances.
type Graph = dag.Graph

// NewGraph returns an empty directed multigraph.
func NewGraph() *Graph { return dag.New() }

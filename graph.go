package rtt

import (
	"repro/internal/dag"
	"repro/internal/scenario"
)

// Graph re-exports the DAG builder so callers can construct instances.
type Graph = dag.Graph

// NewGraph returns an empty directed multigraph.
func NewGraph() *Graph { return dag.New() }

// Generator re-exports the seeded workload generator, which now lives in
// the scenario catalog (internal/scenario absorbed the former internal/gen).
//
// Deprecated: prefer building instances from named scenario Specs
// (scenario.DefaultCorpus and the family catalog); the raw generator
// remains for callers composing their own shapes.
type Generator = scenario.Gen

// NewGenerator returns a deterministic workload generator.
//
// Deprecated: see Generator.
func NewGenerator(seed int64) *Generator { return scenario.NewGen(seed) }

package rtt

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// TestFacadeEndToEnd exercises the public API surface end to end: build,
// solve exactly and approximately through the registry, simulate, and
// round-trip the series-parallel machinery.
func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()
	g := NewGraph()
	s := g.AddNode("s")
	mid := g.AddNode("m")
	snk := g.AddNode("t")
	g.AddEdge(s, mid)
	g.AddEdge(mid, snk)
	step, err := NewStep([]Tuple{{R: 0, T: 8}, {R: 2, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, []DurationFunc{step, NewKWay(9)})
	if err != nil {
		t.Fatal(err)
	}
	exactRep, err := Solve(ctx, "exact", inst, WithBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if !exactRep.Complete {
		t.Fatal("incomplete")
	}
	approxRep, err := Solve(ctx, "bicriteria", inst, WithBudget(3), WithAlpha(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if approxRep.Sol.Makespan < exactRep.Sol.Makespan {
		t.Fatalf("approximation %d beat the optimum %d", approxRep.Sol.Makespan, exactRep.Sol.Makespan)
	}

	tree := SPSeries(SPLeaf(step), SPLeaf(NewRecursiveBinary(16)))
	tables, err := SPSolve(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tables.Makespan(4); err != nil {
		t.Fatal(err)
	}
	spInst, _, err := tree.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SPRecognize(spInst); !ok {
		t.Fatal("series instance not recognized")
	}

	simRes, err := Simulate(SingleCell(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.FinishTime != 100 {
		t.Fatalf("simulated %d; want 100", simRes.FinishTime)
	}

	vi := Figure4()
	m, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 11 {
		t.Fatalf("Figure 4 makespan %d", m)
	}

	gen := scenario.NewGen(1)
	kinst := gen.KWayInstance(2, 2, 1, 20)
	if _, err := Solve(ctx, "kway5", kinst, WithBudget(3)); err != nil {
		t.Fatal(err)
	}
	binst := gen.BinaryInstance(2, 2, 1, 20)
	if _, err := Solve(ctx, "binary4", binst, WithBudget(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ctx, "binarybi", binst, WithBudget(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ctx, "bicriteria-resource", inst, WithTarget(20), WithAlpha(0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(ctx, "exact", inst, WithTarget(20)); err != nil {
		t.Fatal(err)
	}
	if ok, _, _, err := ExactFeasible(inst, 100, 100, nil); err != nil || !ok {
		t.Fatalf("feasible = %v, %v", ok, err)
	}
}

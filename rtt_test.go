package rtt

import "testing"

// TestFacadeEndToEnd exercises the public API surface end to end: build,
// solve exactly and approximately, simulate, and round-trip the
// series-parallel machinery.
func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph()
	s := g.AddNode("s")
	mid := g.AddNode("m")
	snk := g.AddNode("t")
	g.AddEdge(s, mid)
	g.AddEdge(mid, snk)
	step, err := NewStep([]Tuple{{R: 0, T: 8}, {R: 2, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, []DurationFunc{step, NewKWay(9)})
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := ExactMinMakespan(inst, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete {
		t.Fatal("incomplete")
	}
	res, err := BiCriteria(inst, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sol.Makespan < sol.Makespan {
		t.Fatalf("approximation %d beat the optimum %d", res.Sol.Makespan, sol.Makespan)
	}

	tree := SPSeries(SPLeaf(step), SPLeaf(NewRecursiveBinary(16)))
	tables, err := SPSolve(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tables.Makespan(4); err != nil {
		t.Fatal(err)
	}
	spInst, _, err := tree.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SPRecognize(spInst); !ok {
		t.Fatal("series instance not recognized")
	}

	simRes, err := Simulate(SingleCell(100), 0)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.FinishTime != 100 {
		t.Fatalf("simulated %d; want 100", simRes.FinishTime)
	}

	vi := Figure4()
	m, err := vi.Makespan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m != 11 {
		t.Fatalf("Figure 4 makespan %d", m)
	}

	gen := NewGenerator(1)
	kinst := gen.KWayInstance(2, 2, 1, 20)
	if _, err := KWay5(kinst, 3); err != nil {
		t.Fatal(err)
	}
	binst := gen.BinaryInstance(2, 2, 1, 20)
	if _, err := Binary4(binst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := BinaryBiCriteria(binst, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := BiCriteriaResource(inst, 20, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExactMinResource(inst, 20, nil); err != nil {
		t.Fatal(err)
	}
	if ok, _, _, err := ExactFeasible(inst, 100, 100, nil); err != nil || !ok {
		t.Fatalf("feasible = %v, %v", ok, err)
	}
}

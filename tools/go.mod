// Module tools pins the versions of the development tools CI installs
// (staticcheck, govulncheck).  It is a nested module so these
// dependencies never leak into the root module, which is
// dependency-free by policy.
//
// No go.sum is committed: the module is only ever resolved by CI, which
// runs `go mod tidy` here before `go install` and asserts the pins below
// survived.  (Generating go.sum requires module-proxy access, which the
// environments this repo is developed in do not have.)
module repro/tools

go 1.22

require (
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.4.7
)

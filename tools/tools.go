//go:build tools

// Package tools records the repo's development-tool dependencies so `go
// mod tidy` keeps their pins in go.mod.  The build tag keeps the
// imports out of every real build; the blank imports are the standard
// tools.go idiom.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
